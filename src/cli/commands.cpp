/// \file commands.cpp
/// The `greenfpga` subcommands as stream-parameterised entry points.
///
/// Every evaluating command builds a `scenario::ScenarioSpec` and runs it
/// through `scenario::Engine`; the spec path (`greenfpga run`) accepts the
/// same shape from a JSON file, so anything the CLI can do is also
/// expressible declaratively without recompiling.  Rendering is not done
/// here: results lower into `report::ResultFrame`s and the `--format`
/// renderers in `report::result_render` present them.

#include "cli/commands.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <regex>
#include <sstream>
#include <utility>

#include "bench/artifact.hpp"
#include "bench/compare.hpp"
#include "bench/harness.hpp"
#include "core/comparator.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "dse/frontier_spec.hpp"
#include "report/figure_writer.hpp"
#include "report/markdown_report.hpp"
#include "report/result_render.hpp"
#include "scenario/engine.hpp"
#include "scenario/fleet.hpp"
#include "scenario/kind_registry.hpp"
#include "scenario/result_io.hpp"
#include "serve/handlers.hpp"
#include "serve/server.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace greenfpga::cli {

namespace {

scenario::Engine make_engine(const CommandContext& context) {
  return scenario::Engine(scenario::EngineOptions{.threads = context.threads});
}

std::optional<device::Domain> parse_domain(const std::string& text) {
  if (text == "dnn") return device::Domain::dnn;
  if (text == "imgproc") return device::Domain::imgproc;
  if (text == "crypto") return device::Domain::crypto;
  return std::nullopt;
}

/// Run `render` against `--output` (if set) or `out`.  An unwritable
/// output path fails naming the flag and the value, matching the spec
/// parse-error style.
int emit(const CommandContext& context, const std::function<void(std::ostream&)>& render,
         std::ostream& out, std::ostream& err) {
  if (!context.output) {
    render(out);
    return 0;
  }
  const std::filesystem::path path(*context.output);
  if (path.has_parent_path()) {
    std::error_code ignored;
    std::filesystem::create_directories(path.parent_path(), ignored);
  }
  std::ofstream file(path);
  if (!file) {
    err << "--output: cannot write '" << *context.output << "'\n";
    return 1;
  }
  render(file);
  out << "wrote " << *context.output << "\n";
  return 0;
}

int emit_result(const CommandContext& context, const scenario::ScenarioResult& result,
                std::ostream& out, std::ostream& err) {
  return emit(
      context,
      [&result, &context](std::ostream& stream) {
        report::render_result(result, context.format, stream);
      },
      out, err);
}

int emit_frames(const CommandContext& context,
                std::span<const report::ResultFrame> frames, std::ostream& out,
                std::ostream& err) {
  return emit(
      context,
      [frames, &context](std::ostream& stream) {
        report::render_frames(frames, context.format, stream);
      },
      out, err);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream stream(text);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

/// Default axis shape for one `--axes` entry of `greenfpga frontier`;
/// custom ranges go through `greenfpga run` with a frontier spec.
std::optional<dse::FrontierAxisSpec> frontier_axis_preset(const std::string& name) {
  const std::optional<dse::FrontierVariable> variable =
      dse::parse_frontier_variable(name);
  if (!variable) {
    return std::nullopt;
  }
  switch (*variable) {
    case dse::FrontierVariable::app_count:
      return dse::FrontierAxisSpec::linear(dse::FrontierVariable::app_count, 1.0, 10.0,
                                           10);
    case dse::FrontierVariable::lifetime_years:
      return dse::FrontierAxisSpec::linear(dse::FrontierVariable::lifetime_years, 0.5,
                                           8.0, 10);
    case dse::FrontierVariable::volume:
      return dse::FrontierAxisSpec::log(dse::FrontierVariable::volume, 1e4, 1e7, 10);
    case dse::FrontierVariable::node:
      return dse::FrontierAxisSpec::node_list({});
  }
  return std::nullopt;
}

/// Shared tail of `run` and `mc`: evaluate the spec, render per --format,
/// write the optional legacy machine-readable exports.
int run_and_emit(const CommandContext& context, const scenario::ScenarioSpec& spec,
                 const std::optional<std::string>& json_out,
                 const std::optional<std::string>& csv_out, std::ostream& out,
                 std::ostream& err) {
  const scenario::ScenarioResult result = make_engine(context).run(spec);
  const int code = emit_result(context, result, out, err);
  if (code != 0) {
    return code;
  }
  if (json_out) {
    io::write_json_file(*json_out, scenario::result_to_json(result));
    out << "wrote " << *json_out << "\n";
  }
  if (csv_out) {
    report::frame_to_csv(scenario::mc_samples_frame(result)).write_file(*csv_out);
    out << "wrote " << *csv_out << "\n";
  }
  return 0;
}

}  // namespace

int print_usage(std::ostream& out, bool error) {
  out << "GreenFPGA: lifecycle carbon-footprint comparison of FPGA and ASIC computing\n"
         "\n"
         "usage:\n"
         "  greenfpga [--threads N] [--format text|json|csv|md] [--output <path>]\n"
         "            <command> ...\n"
         "\n"
         "  greenfpga run <spec.json> [--json <out.json>] [--csv <out.csv>]\n"
         "      evaluate a declarative scenario spec through the unified engine;\n"
         "      kinds: "
      << scenario::kind_name_list()
      << "\n"
         "      (the registry is the source of truth for that list); see\n"
         "      examples/specs/ and docs/CLI.md for the spec shape (--csv exports\n"
         "      per-sample Monte-Carlo totals, sampling kinds only)\n"
         "  greenfpga serve [--port N] [--host ADDR] [--cache-capacity N]\n"
         "                  [--cache-shards N] [--cache-dir PATH]\n"
         "                  [--max-connections N] [--io-timeout-ms N]\n"
         "                  [--idle-timeout-ms N]\n"
         "      run the persistent HTTP/1.1 evaluation daemon: POST /v1/run and\n"
         "      /v1/batch take spec JSON and answer the canonical result JSON\n"
         "      (byte-identical to `run --format json`), served through a\n"
         "      content-addressed LRU result cache (GET /v1/stats for hit/miss\n"
         "      counters, GET /v1/platforms, GET /healthz; default port 8080,\n"
         "      --port 0 picks an ephemeral port, loopback-only by default)\n"
         "  greenfpga batch <manifest.json|directory> [--validate]\n"
         "      evaluate many specs as one batch on the worker pool; writes one\n"
         "      result JSON per spec plus an aggregate index to the --output\n"
         "      directory (default batch_results); --validate re-reads every\n"
         "      emitted JSON and fails unless it round-trips canonically\n"
         "  greenfpga bench [--filter RE] [--quick] [--list] [--out <path>]\n"
         "                  [--compare <baseline>]... [--max-regression X]\n"
         "      run the built-in micro-benchmark cases (engine grid, Monte-Carlo\n"
         "      sampler, batch pool, JSON codec, result cache); --out writes one\n"
         "      canonical BENCH_<group>.json per case group; --compare checks the\n"
         "      medians against checked-in baselines (file or directory) and exits\n"
         "      non-zero naming each case slower than --max-regression times its\n"
         "      baseline (default 10); --quick lowers repetitions only, so medians\n"
         "      stay comparable; --list prints the case registry\n"
         "  greenfpga frontier <dnn|imgproc|crypto> [--platforms a,b,...] [--axes x,y]\n"
         "                     [--objective total|embodied|operational] [--samples N]\n"
         "                     [--seed S] [--json <out.json>]\n"
         "      platform win-region DSE: evaluate every registry platform\n"
         "      (default asic,fpga,gpu,cpu) over a deployment grid (default\n"
         "      apps x volume; axes: apps, lifetime, volume, node), report the\n"
         "      per-cell winner, win fractions, breakeven boundary polylines, and\n"
         "      (with --samples) Monte-Carlo win confidence\n"
         "  greenfpga mc <dnn|imgproc|crypto> [--samples N] [--seed S]\n"
         "              [--csv <out.csv>] [--json <out.json>]\n"
         "      Monte-Carlo uncertainty quantification over the Table 1 parameter\n"
         "      distributions: percentile bands, win fractions and a ratio CDF\n"
         "  greenfpga fleet <dnn|imgproc|crypto> [--platforms a,b,...] [--horizon Y]\n"
         "                  [--utilization U] [--samples N] [--seed S]\n"
         "                  [--json <out.json>] [--csv <out.csv>]\n"
         "      mixed-platform datacenter fleet: size each platform's fleet to a\n"
         "      24-hour traffic trace served across regional grid profiles, with\n"
         "      FPGA reconfiguration amortisation; --samples adds Table 1\n"
         "      Monte-Carlo bands over the fleet totals\n"
         "  greenfpga compare <scenario.json> [--json <out.json>] [--markdown <out.md>]\n"
         "      evaluate a scenario file (see `greenfpga dump-config` for the shape)\n"
         "  greenfpga sweep <dnn|imgproc|crypto> <apps|lifetime|volume>\n"
         "      run one of the paper's sweep experiments on a built-in testcase\n"
         "  greenfpga industry\n"
         "      evaluate the Table 3 industry testcases (paper Figs. 10-11)\n"
         "  greenfpga nodes <dnn|imgproc|crypto>\n"
         "      rank fabrication nodes for the domain's FPGA by lifecycle CFP\n"
         "  greenfpga figures\n"
         "      run every paper experiment; print measured crossovers vs paper\n"
         "  greenfpga dump-config\n"
         "      print the calibrated paper-default model suite as JSON\n"
         "\n"
         "  --threads N sets the engine worker count (default: the\n"
         "  GREENFPGA_THREADS environment variable, else hardware concurrency).\n"
         "  --format selects the renderer: text (default), json (canonical result\n"
         "  JSON, byte-identical at any --threads), csv, md.\n"
         "  --output writes the rendered output to a file (for `batch`: the\n"
         "  results directory).\n";
  return error ? 2 : 0;
}

int run_spec(const CommandContext& context, const std::vector<std::string>& args,
            std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "run: missing spec file\n";
    return 2;
  }
  std::optional<std::string> json_out;
  std::optional<std::string> csv_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      json_out = args[i + 1];
      ++i;
    } else if (args[i] == "--csv" && i + 1 < args.size()) {
      csv_out = args[i + 1];
      ++i;
    } else {
      err << "run: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  // load_spec reports parse/validation errors with the spec path and the
  // offending key, so a bad file fails with an actionable message.
  const scenario::ScenarioSpec spec = scenario::load_spec(args[0]);
  // The kind's module says whether this spec produces per-sample totals
  // (montecarlo always; fleet only with mc_samples > 0).
  const scenario::KindModule& module = scenario::kind_module(spec.kind);
  if (csv_out && (module.sample_csv == nullptr || !module.sample_csv(spec))) {
    err << "run: --csv exports Monte-Carlo samples; spec '" << spec.name
        << "' has kind " << to_string(spec.kind) << "\n";
    return 2;
  }
  return run_and_emit(context, spec, json_out, csv_out, out, err);
}

namespace {

/// Strict bounded integer flag parse (trailing garbage and overflow
/// rejected), mirroring the global --threads rules.
std::optional<long> parse_flag_int(const std::string& value, long lo, long hi) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE ||
      parsed < lo || parsed > hi) {
    return std::nullopt;
  }
  return parsed;
}

}  // namespace

int run_serve(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err) {
  serve::ServerOptions server_options;
  server_options.port = 8080;
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 8;
  std::string cache_dir;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const bool has_value = i + 1 < args.size();
    if (args[i] == "--port" && has_value) {
      const auto port = parse_flag_int(args[i + 1], 0, 65535);
      if (!port) {
        err << "serve: invalid --port '" << args[i + 1] << "' (0..65535; 0 = ephemeral)\n";
        return 2;
      }
      server_options.port = static_cast<int>(*port);
      ++i;
    } else if (args[i] == "--host" && has_value) {
      server_options.host = args[i + 1];
      ++i;
    } else if (args[i] == "--cache-capacity" && has_value) {
      const auto capacity = parse_flag_int(args[i + 1], 1, 1'000'000'000);
      if (!capacity) {
        err << "serve: invalid --cache-capacity '" << args[i + 1] << "' (>= 1)\n";
        return 2;
      }
      cache_capacity = static_cast<std::size_t>(*capacity);
      ++i;
    } else if (args[i] == "--cache-shards" && has_value) {
      const auto shards = parse_flag_int(args[i + 1], 1, 4096);
      if (!shards) {
        err << "serve: invalid --cache-shards '" << args[i + 1] << "' (1..4096)\n";
        return 2;
      }
      cache_shards = static_cast<std::size_t>(*shards);
      ++i;
    } else if (args[i] == "--cache-dir" && has_value) {
      cache_dir = args[i + 1];
      if (cache_dir.empty()) {
        err << "serve: invalid --cache-dir '' (non-empty path)\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--io-timeout-ms" && has_value) {
      const auto timeout = parse_flag_int(args[i + 1], 0, 3'600'000);
      if (!timeout) {
        err << "serve: invalid --io-timeout-ms '" << args[i + 1]
            << "' (0..3600000; 0 disables)\n";
        return 2;
      }
      server_options.io_timeout_ms = static_cast<int>(*timeout);
      ++i;
    } else if (args[i] == "--idle-timeout-ms" && has_value) {
      const auto timeout = parse_flag_int(args[i + 1], 0, 86'400'000);
      if (!timeout) {
        err << "serve: invalid --idle-timeout-ms '" << args[i + 1]
            << "' (0..86400000; 0 disables)\n";
        return 2;
      }
      server_options.idle_timeout_ms = static_cast<int>(*timeout);
      ++i;
    } else if (args[i] == "--max-connections" && has_value) {
      const auto limit = parse_flag_int(args[i + 1], 1, 65536);
      if (!limit) {
        err << "serve: invalid --max-connections '" << args[i + 1] << "' (>= 1)\n";
        return 2;
      }
      server_options.max_connections = static_cast<int>(*limit);
      ++i;
    } else {
      err << "serve: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  std::optional<serve::ServeContext> serve_context;
  try {
    serve_context.emplace(scenario::EngineOptions{.threads = context.threads},
                          cache_capacity, cache_shards, cache_dir);
  } catch (const std::runtime_error& error) {
    err << "serve: " << error.what() << "\n";
    return 2;
  }
  serve::Server server(serve::make_router(*serve_context), server_options);
  server.start();
  // Flush before blocking: supervisors and the CI smoke step wait for
  // this line to know the port (essential with --port 0).
  out << "greenfpga serve listening on http://" << server_options.host << ":"
      << server.port() << " (cache capacity " << cache_capacity << " in "
      << cache_shards << " shard(s), "
      << serve_context->engine().threads() << " worker thread(s)"
      << (cache_dir.empty() ? std::string() : ", cache dir " + cache_dir) << ")"
      << std::endl;
  server.wait();
  return 0;
}

namespace {

/// Loads the baseline artifacts named by one `--compare` operand: a
/// single artifact file, or every `BENCH_*.json` directly inside a
/// directory (sorted, so output order is stable).
std::vector<bench::BenchArtifact> load_baselines(const std::string& target) {
  namespace fs = std::filesystem;
  std::vector<bench::BenchArtifact> baselines;
  if (fs::is_directory(target)) {
    std::vector<fs::path> files;
    for (const fs::directory_entry& entry : fs::directory_iterator(target)) {
      const std::string filename = entry.path().filename().string();
      if (entry.is_regular_file() && filename.starts_with("BENCH_") &&
          entry.path().extension() == ".json") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      baselines.push_back(bench::read_artifact_file(file.string()));
    }
  } else {
    baselines.push_back(bench::read_artifact_file(target));
  }
  return baselines;
}

}  // namespace

int run_bench(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err) {
  std::optional<std::string> filter;
  bool quick = false;
  bool list = false;
  std::optional<std::string> out_path;
  std::vector<std::string> compare_paths;
  std::optional<double> max_regression;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const bool has_value = i + 1 < args.size();
    if (args[i] == "--filter" && has_value) {
      filter = args[i + 1];
      ++i;
    } else if (args[i] == "--quick") {
      quick = true;
    } else if (args[i] == "--list") {
      list = true;
    } else if (args[i] == "--out" && has_value) {
      out_path = args[i + 1];
      ++i;
    } else if (args[i] == "--compare" && has_value) {
      compare_paths.push_back(args[i + 1]);
      ++i;
    } else if (args[i] == "--max-regression" && has_value) {
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(args[i + 1].c_str(), &end);
      if (args[i + 1].empty() || end != args[i + 1].c_str() + args[i + 1].size() ||
          errno == ERANGE || !(parsed > 0.0)) {
        err << "bench: invalid --max-regression '" << args[i + 1]
            << "' (a factor > 0, e.g. 10)\n";
        return 2;
      }
      max_regression = parsed;
      ++i;
    } else {
      err << "bench: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  if (max_regression && compare_paths.empty()) {
    err << "bench: --max-regression requires --compare\n";
    return 2;
  }

  std::optional<std::regex> filter_re;
  if (filter) {
    try {
      filter_re.emplace(*filter);
    } catch (const std::regex_error& error) {
      err << "bench: invalid --filter regex '" << *filter << "': " << error.what()
          << "\n";
      return 2;
    }
  }
  const auto matches = [&filter_re](const std::string& id) {
    return !filter_re || std::regex_search(id, *filter_re);
  };

  std::vector<bench::BenchCase> cases;
  for (bench::BenchCase& bench_case : bench::builtin_cases()) {
    if (matches(bench_case.id())) {
      cases.push_back(std::move(bench_case));
    }
  }
  if (list) {
    for (const bench::BenchCase& bench_case : cases) {
      out << bench_case.id() << "\n    " << bench_case.description << "\n";
    }
    return 0;
  }
  if (cases.empty()) {
    err << "bench: no cases match --filter '" << filter.value_or("") << "'\n";
    return 2;
  }

  const bench::BenchOptions options =
      quick ? bench::BenchOptions::quick() : bench::BenchOptions{};
  const bench::Environment environment = bench::capture_environment();
  std::vector<bench::CaseResult> results;
  results.reserve(cases.size());
  for (const bench::BenchCase& bench_case : cases) {
    results.push_back(bench::run_case(bench_case, options));
  }

  // The measurement table, through the frame IR so --format/--output
  // dispatch like every other command.
  report::ResultFrame frame;
  frame.name = "bench";
  frame.columns = {report::Column{.name = "case", .unit = ""},
                   report::Column{.name = "reps", .unit = "", .precision = 3},
                   report::Column{.name = "iters", .unit = "", .precision = 6},
                   report::Column{.name = "median", .unit = "s", .precision = 4},
                   report::Column{.name = "p10", .unit = "s", .precision = 4},
                   report::Column{.name = "p90", .unit = "s", .precision = 4},
                   report::Column{.name = "mad", .unit = "s", .precision = 3},
                   report::Column{.name = "ops/s", .unit = "", .precision = 4},
                   report::Column{.name = "MB/s", .unit = "", .precision = 4}};
  for (const bench::CaseResult& result : results) {
    frame.add_row({report::Cell(result.id()),
                   report::Cell(static_cast<double>(result.repetitions)),
                   report::Cell(static_cast<double>(result.iterations)),
                   report::Cell(result.seconds.median), report::Cell(result.seconds.p10),
                   report::Cell(result.seconds.p90), report::Cell(result.seconds.mad),
                   report::Cell(result.ops_per_s),
                   result.bytes_per_s > 0.0
                       ? report::Cell(result.bytes_per_s / 1e6)
                       : report::Cell(nullptr)});
  }
  frame.set_meta("mode", quick ? "quick" : "full");
  frame.set_meta("compiler", environment.compiler);
  frame.set_meta("build_type", environment.build_type);
  frame.set_meta("cores", std::to_string(environment.cores));
  const std::vector<report::ResultFrame> frames{std::move(frame)};
  const int code = emit_frames(context, frames, out, err);
  if (code != 0) {
    return code;
  }

  const std::vector<bench::BenchArtifact> artifacts =
      bench::artifacts_from_results(results, environment);
  if (out_path) {
    namespace fs = std::filesystem;
    if (out_path->ends_with(".json")) {
      if (artifacts.size() != 1) {
        err << "bench: --out '" << *out_path << "' names a single file but "
            << artifacts.size()
            << " case groups ran; pass a directory or narrow --filter\n";
        return 2;
      }
      bench::write_artifact_file(*out_path, artifacts.front());
      out << "wrote " << *out_path << "\n";
    } else {
      for (const bench::BenchArtifact& artifact : artifacts) {
        const std::string path =
            (fs::path(*out_path) / bench::artifact_filename(artifact.group)).string();
        bench::write_artifact_file(path, artifact);
        out << "wrote " << path << "\n";
      }
    }
  }

  if (compare_paths.empty()) {
    return 0;
  }

  // Baseline comparison.  Whole groups the run did not execute are
  // skipped with a note (a directory baseline may track groups produced
  // by external drivers, e.g. BENCH_serve.json), and --filter applies to
  // baseline cases exactly as to the run, so a filtered run never reports
  // deliberately-skipped cases as missing.  Within a compared group,
  // a baseline case absent from the run is a failure.
  const double limit = max_regression.value_or(10.0);
  std::vector<bench::BenchArtifact> baselines;
  for (const std::string& target : compare_paths) {
    std::vector<bench::BenchArtifact> loaded = load_baselines(target);
    if (loaded.empty()) {
      err << "bench: no BENCH_*.json baselines found in '" << target << "'\n";
      return 2;
    }
    baselines.insert(baselines.end(), std::make_move_iterator(loaded.begin()),
                     std::make_move_iterator(loaded.end()));
  }
  std::vector<bench::BenchArtifact> compared;
  for (bench::BenchArtifact& baseline : baselines) {
    const bool executed =
        std::any_of(artifacts.begin(), artifacts.end(),
                    [&baseline](const bench::BenchArtifact& artifact) {
                      return artifact.group == baseline.group;
                    });
    if (!executed) {
      out << "compare: skipping baseline group '" << baseline.group
          << "' (not executed in this run)\n";
      continue;
    }
    std::erase_if(baseline.cases, [&matches](const bench::CaseResult& result) {
      return !matches(result.id());
    });
    if (!baseline.cases.empty()) {
      compared.push_back(std::move(baseline));
    }
  }
  const std::vector<bench::CaseComparison> rows =
      bench::compare_results(results, compared, limit);
  for (const bench::CaseComparison& row : rows) {
    out << "compare: " << to_string(row.verdict) << "  " << row.id;
    if (row.verdict == bench::CaseVerdict::ok ||
        row.verdict == bench::CaseVerdict::regressed) {
      out << "  " << units::format_significant(row.factor, 3) << "x of baseline ("
          << io::format_number(row.current_median) << " s vs "
          << io::format_number(row.baseline_median) << " s, limit "
          << units::format_significant(limit, 3) << "x)";
    } else if (row.verdict == bench::CaseVerdict::missing) {
      out << "  in baseline but not executed";
    } else {
      out << "  no baseline yet";
    }
    out << "\n";
  }
  bool failed = false;
  for (const bench::CaseComparison& row : rows) {
    if (row.verdict == bench::CaseVerdict::regressed) {
      failed = true;
      err << "bench: case '" << row.id << "' regressed: median "
          << io::format_number(row.current_median) << " s vs baseline "
          << io::format_number(row.baseline_median) << " s ("
          << units::format_significant(row.factor, 3) << "x > limit "
          << units::format_significant(limit, 3) << "x)\n";
    } else if (row.verdict == bench::CaseVerdict::missing) {
      failed = true;
      err << "bench: case '" << row.id
          << "' is in the baseline but was not executed (renamed or removed? "
             "regenerate the baseline deliberately)\n";
    }
  }
  if (failed) {
    return 1;
  }
  out << "compare: all " << rows.size() << " case(s) within "
      << units::format_significant(limit, 3) << "x of baseline\n";
  return 0;
}

int run_frontier(const CommandContext& context, const std::vector<std::string>& args,
                 std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "frontier: expected <dnn|imgproc|crypto> [--platforms a,b,...] [--axes x,y]"
           " [--objective total|embodied|operational] [--samples N] [--seed S]"
           " [--json <out.json>]\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "frontier: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::frontier, *domain);
  std::vector<std::string> platforms{"asic", "fpga", "gpu", "cpu"};
  std::optional<std::string> json_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const bool has_value = i + 1 < args.size();
    if (args[i] == "--platforms" && has_value) {
      platforms = split_csv(args[i + 1]);
      if (platforms.size() < 2) {
        err << "frontier: --platforms needs at least two comma-separated names\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--axes" && has_value) {
      spec.frontier.axes.clear();
      for (const std::string& name : split_csv(args[i + 1])) {
        const auto axis = frontier_axis_preset(name);
        if (!axis) {
          err << "frontier: unknown axis '" << name
              << "' (apps, lifetime, volume, node)\n";
          return 2;
        }
        spec.frontier.axes.push_back(*axis);
      }
      ++i;
    } else if (args[i] == "--objective" && has_value) {
      const auto objective = dse::parse_frontier_objective(args[i + 1]);
      if (!objective) {
        err << "frontier: unknown --objective '" << args[i + 1]
            << "' (total, embodied, operational)\n";
        return 2;
      }
      spec.frontier.objective = *objective;
      ++i;
    } else if (args[i] == "--samples" && has_value) {
      io::Json value = io::Json::object();
      try {
        value["samples"] = io::parse_json(args[i + 1]);
        spec.frontier.confidence_samples =
            static_cast<int>(core::int_field_or(value, "samples", 0, 0, 1'000'000));
      } catch (const std::exception& error) {
        err << "frontier: invalid --samples '" << args[i + 1] << "': " << error.what()
            << "\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--seed" && has_value) {
      io::Json value = io::Json::object();
      try {
        value["seed"] = io::parse_json(args[i + 1]);
        spec.frontier.seed =
            static_cast<unsigned>(core::int_field_or(value, "seed", 0, 0, 4294967295LL));
      } catch (const std::exception& error) {
        err << "frontier: invalid --seed '" << args[i + 1] << "': " << error.what()
            << "\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--json" && has_value) {
      json_out = args[i + 1];
      ++i;
    } else {
      err << "frontier: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  spec.platforms.clear();
  std::string joined;
  for (const std::string& name : platforms) {
    spec.platforms.push_back(scenario::PlatformRef{.name = name, .chip = std::nullopt});
    joined += (joined.empty() ? "" : " vs ") + name;
  }
  spec.name = to_string(*domain) + " platform frontier: " + joined;
  return run_and_emit(context, spec, json_out, std::nullopt, out, err);
}

int run_mc(const CommandContext& context, const std::vector<std::string>& args,
          std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "mc: expected <domain> [--samples N] [--seed S] [--csv <out.csv>] "
           "[--json <out.json>]\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "mc: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::montecarlo, *domain);
  spec.name = to_string(*domain) + " Monte-Carlo uncertainty";
  std::optional<std::string> json_out;
  std::optional<std::string> csv_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const bool has_value = i + 1 < args.size();
    if (args[i] == "--samples" && has_value) {
      // Same strict range-guarded read as the JSON path: int_field_or
      // rejects junk instead of silently truncating.
      io::Json value = io::Json::object();
      try {
        value["samples"] = io::parse_json(args[i + 1]);
        spec.montecarlo.samples = static_cast<int>(
            core::int_field_or(value, "samples", 0, 1, 10'000'000));
      } catch (const std::exception& error) {
        err << "mc: invalid --samples '" << args[i + 1] << "': " << error.what() << "\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--seed" && has_value) {
      io::Json value = io::Json::object();
      try {
        value["seed"] = io::parse_json(args[i + 1]);
        spec.montecarlo.seed = static_cast<unsigned>(
            core::int_field_or(value, "seed", 0, 0, 4294967295LL));
      } catch (const std::exception& error) {
        err << "mc: invalid --seed '" << args[i + 1] << "': " << error.what() << "\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--csv" && has_value) {
      csv_out = args[i + 1];
      ++i;
    } else if (args[i] == "--json" && has_value) {
      json_out = args[i + 1];
      ++i;
    } else {
      err << "mc: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  return run_and_emit(context, spec, json_out, csv_out, out, err);
}

int run_fleet(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "fleet: expected <dnn|imgproc|crypto> [--platforms a,b,...] [--horizon Y]"
           " [--utilization U] [--samples N] [--seed S] [--json <out.json>]"
           " [--csv <out.csv>]\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "fleet: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::fleet, *domain);
  scenario::FleetSpec& fleet = *spec.fleet;
  std::optional<std::string> json_out;
  std::optional<std::string> csv_out;
  const auto parse_flag_double = [](const std::string& value) -> std::optional<double> {
    char* end = nullptr;
    errno = 0;
    const double parsed = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE) {
      return std::nullopt;
    }
    return parsed;
  };
  std::vector<std::string> platforms;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const bool has_value = i + 1 < args.size();
    if (args[i] == "--platforms" && has_value) {
      platforms = split_csv(args[i + 1]);
      if (platforms.size() < 2) {
        err << "fleet: --platforms needs at least two comma-separated names\n";
        return 2;
      }
      ++i;
    } else if (args[i] == "--horizon" && has_value) {
      const auto horizon = parse_flag_double(args[i + 1]);
      if (!horizon || !(*horizon > 0.0)) {
        err << "fleet: invalid --horizon '" << args[i + 1] << "' (years > 0)\n";
        return 2;
      }
      fleet.horizon_years = *horizon;
      ++i;
    } else if (args[i] == "--utilization" && has_value) {
      const auto utilization = parse_flag_double(args[i + 1]);
      if (!utilization || !(*utilization > 0.0) || !(*utilization <= 1.0)) {
        err << "fleet: invalid --utilization '" << args[i + 1] << "' (0 < U <= 1)\n";
        return 2;
      }
      fleet.utilization = *utilization;
      ++i;
    } else if (args[i] == "--samples" && has_value) {
      const auto samples = parse_flag_int(args[i + 1], 0, 10'000'000);
      if (!samples) {
        err << "fleet: invalid --samples '" << args[i + 1] << "' (0..10000000)\n";
        return 2;
      }
      fleet.mc_samples = static_cast<int>(*samples);
      ++i;
    } else if (args[i] == "--seed" && has_value) {
      const auto seed = parse_flag_int(args[i + 1], 0, 4294967295LL);
      if (!seed) {
        err << "fleet: invalid --seed '" << args[i + 1] << "' (0..4294967295)\n";
        return 2;
      }
      spec.montecarlo.seed = static_cast<unsigned>(*seed);
      ++i;
    } else if (args[i] == "--json" && has_value) {
      json_out = args[i + 1];
      ++i;
    } else if (args[i] == "--csv" && has_value) {
      csv_out = args[i + 1];
      ++i;
    } else {
      err << "fleet: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }
  if (csv_out && fleet.mc_samples <= 0) {
    err << "fleet: --csv exports Monte-Carlo samples; pass --samples N (> 0)\n";
    return 2;
  }
  std::string joined;
  for (const std::string& name : platforms) {
    spec.platforms.push_back(scenario::PlatformRef{.name = name, .chip = std::nullopt});
    joined += (joined.empty() ? "" : " + ") + name;
  }
  spec.name = to_string(*domain) + " datacenter fleet" +
              (joined.empty() ? std::string() : ": " + joined);
  return run_and_emit(context, spec, json_out, csv_out, out, err);
}

int run_compare(const CommandContext& context, const std::vector<std::string>& args,
               std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "compare: missing scenario file\n";
    return 2;
  }
  std::optional<std::string> json_out;
  std::optional<std::string> markdown_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      json_out = args[i + 1];
      ++i;
    } else if (args[i] == "--markdown" && i + 1 < args.size()) {
      markdown_out = args[i + 1];
      ++i;
    } else {
      err << "compare: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }

  const core::ScenarioConfig scenario = core::load_scenario(args[0]);
  scenario::ScenarioSpec spec;
  spec.name = scenario.name;
  spec.kind = scenario::ScenarioKind::compare;
  spec.suite = scenario.suite;
  spec.platforms = {scenario::PlatformRef{.name = "asic", .chip = scenario.asic},
                    scenario::PlatformRef{.name = "fpga", .chip = scenario.fpga}};
  spec.schedule.explicit_schedule = scenario.schedule;
  const scenario::ScenarioResult result = make_engine(context).run(spec);
  const core::Comparison comparison = result.comparison();

  int code;
  if (context.format == report::OutputFormat::text) {
    // The classic component-stack view plus the verdict line.
    code = emit(
        context,
        [&](std::ostream& stream) {
          stream << "== " << scenario.name << " ==\n";
          const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
              {"ASIC", comparison.asic.total},
              {"FPGA", comparison.fpga.total},
          };
          stream << report::breakdown_table(platforms) << "FPGA:ASIC ratio "
                 << units::format_significant(comparison.ratio(), 4)
                 << " -> greener platform: " << to_string(comparison.verdict()) << "\n\n";
        },
        out, err);
  } else {
    code = emit_result(context, result, out, err);
  }
  if (code != 0) {
    return code;
  }

  if (json_out) {
    io::Json report = io::Json::object();
    report["scenario"] = scenario.name;
    report["asic"] = core::to_json(comparison.asic);
    report["fpga"] = core::to_json(comparison.fpga);
    report["ratio"] = comparison.ratio();
    report["greener"] = to_string(comparison.verdict());
    io::write_json_file(*json_out, report);
    out << "wrote " << *json_out << "\n";
  }
  if (markdown_out) {
    report::MarkdownReportInputs inputs;
    inputs.scenario = scenario;
    inputs.comparison = comparison;
    inputs.uncertainty =
        scenario::monte_carlo(scenario.suite,
                              device::DomainTestcase{.domain = device::Domain::dnn,
                                                     .asic = scenario.asic,
                                                     .fpga = scenario.fpga},
                              scenario.schedule, scenario::table1_ranges(), 128);
    std::ofstream file(*markdown_out);
    if (!file) {
      err << "compare: cannot write '" << *markdown_out << "'\n";
      return 1;
    }
    file << report::render_markdown_report(inputs);
    out << "wrote " << *markdown_out << "\n";
  }
  return 0;
}

int run_sweep(const CommandContext& context, const std::vector<std::string>& args,
             std::ostream& out, std::ostream& err) {
  if (args.size() != 2) {
    err << "sweep: expected <domain> <variable>\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "sweep: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, *domain);
  if (args[1] == "apps") {
    spec.axes = {scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 12, 12)};
  } else if (args[1] == "lifetime") {
    spec.axes = {
        scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years, 0.2, 2.5, 24)};
  } else if (args[1] == "volume") {
    spec.axes = {scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e3, 1e7, 25)};
  } else {
    err << "sweep: unknown variable '" << args[1] << "'\n";
    return 2;
  }
  spec.name = to_string(*domain) + " sweep over " + spec.axes.front().label();
  return emit_result(context, make_engine(context).run(spec), out, err);
}

int run_industry(const CommandContext& context, const std::vector<std::string>& args,
                 std::ostream& out, std::ostream& err) {
  if (!args.empty()) {
    err << "industry: unexpected argument '" << args.front() << "'\n";
    return 2;
  }
  const core::LifecycleModel model(core::industry_suite());

  // Fig. 10 setup: each FPGA runs 6 years / 3 applications / 1M volume.
  workload::Application fpga_app;
  fpga_app.name = "industry-fpga-app";
  fpga_app.lifetime = 2.0 * units::unit::years;
  fpga_app.volume = 1e6;
  const workload::Schedule fpga_schedule = workload::homogeneous_schedule(3, fpga_app);

  // Fig. 11 setup: one 6-year application, never reprogrammed.
  workload::Application asic_app;
  asic_app.name = "industry-asic-app";
  asic_app.lifetime = 6.0 * units::unit::years;
  asic_app.volume = 1e6;
  const workload::Schedule asic_schedule{asic_app};

  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  for (const device::ChipSpec& fpga : {device::industry_fpga1(), device::industry_fpga2()}) {
    rows.emplace_back(fpga.name, model.evaluate_fpga(fpga, fpga_schedule).total);
  }
  for (const device::ChipSpec& asic : {device::industry_asic1(), device::industry_asic2()}) {
    rows.emplace_back(asic.name, model.evaluate_asic(asic, asic_schedule).total);
  }
  const std::vector<report::ResultFrame> frames{
      report::breakdown_frame("industry", rows)};
  return emit(
      context,
      [&](std::ostream& stream) {
        if (context.format == report::OutputFormat::text) {
          stream << "== Industry testcases (Table 3; FPGAs: 6 y / 3 apps / 1M; "
                    "ASICs: 6 y / 1M) ==\n"
                 << report::breakdown_table(rows);
        } else {
          report::render_frames(frames, context.format, stream);
        }
      },
      out, err);
}

int run_nodes(const CommandContext& context, const std::vector<std::string>& args,
             std::ostream& out, std::ostream& err) {
  if (args.size() != 1) {
    err << "nodes: expected <domain>\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "nodes: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::node_dse, *domain);
  spec.name = "node ranking for the " + to_string(*domain) +
              " FPGA (paper schedule: 5 apps x 2 y x 1M)";
  return emit_result(context, make_engine(context).run(spec), out, err);
}

int run_figures(const CommandContext& context, const std::vector<std::string>& args,
                std::ostream& out, std::ostream& err) {
  if (!args.empty()) {
    err << "figures: unexpected argument '" << args.front() << "'\n";
    return 2;
  }
  const scenario::Engine engine = make_engine(context);
  const auto sweep_series = [&](device::Domain domain, scenario::AxisSpec axis) {
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::make(scenario::ScenarioKind::sweep, domain);
    spec.axes = {std::move(axis)};
    return engine.run(spec).sweep_series();
  };

  report::ResultFrame frame;
  frame.name = "paper-vs-measured";
  frame.columns = {report::Column{.name = "experiment", .unit = ""},
                   report::Column{.name = "domain", .unit = ""},
                   report::Column{.name = "paper", .unit = ""},
                   report::Column{.name = "measured", .unit = ""}};
  const auto fmt = [](const std::optional<double>& x) {
    return x ? units::format_significant(*x, 4) : std::string("none");
  };

  for (const device::Domain domain : device::all_domains()) {
    const auto fig4 = sweep_series(
        domain, scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 16, 16));
    const auto a2f = first_crossover(fig4.crossovers(), scenario::CrossoverKind::a2f);
    const char* paper_a2f = domain == device::Domain::dnn       ? "~6"
                            : domain == device::Domain::imgproc ? "~12 (past 8)"
                                                                : "1 (immediate)";
    frame.add_row({report::Cell(std::string("Fig. 4 A2F [apps]")),
                   report::Cell(to_string(domain)), report::Cell(std::string(paper_a2f)),
                   report::Cell(fmt(a2f))});

    const auto fig5 = sweep_series(
        domain,
        scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years, 0.2, 2.5, 47));
    const auto f2a_t = first_crossover(fig5.crossovers(), scenario::CrossoverKind::f2a);
    const char* paper_f2a_t = domain == device::Domain::dnn       ? "~1.6"
                              : domain == device::Domain::imgproc ? "none (ASIC)"
                                                                  : "none (FPGA)";
    frame.add_row({report::Cell(std::string("Fig. 5 F2A [years]")),
                   report::Cell(to_string(domain)), report::Cell(std::string(paper_f2a_t)),
                   report::Cell(fmt(f2a_t))});

    const auto fig6 = sweep_series(
        domain, scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e3, 1e7, 41));
    const auto f2a_v = first_crossover(fig6.crossovers(), scenario::CrossoverKind::f2a);
    const char* paper_f2a_v = domain == device::Domain::dnn       ? "~2e6"
                              : domain == device::Domain::imgproc ? "~3e5"
                                                                  : "none (FPGA)";
    frame.add_row({report::Cell(std::string("Fig. 6 F2A [units]")),
                   report::Cell(to_string(domain)), report::Cell(std::string(paper_f2a_v)),
                   report::Cell(fmt(f2a_v))});
  }

  scenario::ScenarioSpec fig2_spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::compare, device::Domain::dnn);
  fig2_spec.schedule.app_count = 10;
  const double fig2 = engine.run(fig2_spec).comparison().ratio();
  frame.add_row({report::Cell(std::string("Fig. 2 FPGA saving at 10 apps")),
                 report::Cell(std::string("DNN")), report::Cell(std::string("~25 %")),
                 report::Cell(units::format_significant(100.0 * (1.0 - fig2), 4) + " %")});

  const std::vector<report::ResultFrame> frames{std::move(frame)};
  return emit(
      context,
      [&](std::ostream& stream) {
        if (context.format == report::OutputFormat::text) {
          stream << "== paper-vs-measured headline summary (see EXPERIMENTS.md for "
                    "analysis) ==\n";
        }
        report::render_frames(frames, context.format, stream);
      },
      out, err);
}

int run_dump_config(const CommandContext& context, const std::vector<std::string>& args,
                    std::ostream& out, std::ostream& err) {
  if (!args.empty()) {
    err << "dump-config: unexpected argument '" << args.front() << "'\n";
    return 2;
  }
  if (context.format != report::OutputFormat::text &&
      context.format != report::OutputFormat::json) {
    err << "dump-config: --format " << to_string(context.format)
        << " not supported (the dump is JSON; use text or json)\n";
    return 2;
  }
  io::Json scenario = io::Json::object();
  scenario["name"] = "example scenario (edit me)";
  scenario["suite"] = core::to_json(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  scenario["asic"] = core::to_json(testcase.asic);
  scenario["fpga"] = core::to_json(testcase.fpga);
  scenario["schedule"] = core::to_json(core::paper_schedule(device::Domain::dnn));
  return emit(context,
              [&](std::ostream& stream) {
                std::string text;
                scenario.dump_to(text);
                text.push_back('\n');
                stream << text;
              },
              out, err);
}

int run_batch(const CommandContext& context, const std::vector<std::string>& args,
             std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "batch: expected <manifest.json|directory> [--validate]\n";
    return 2;
  }
  bool validate = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--validate") {
      validate = true;
    } else {
      err << "batch: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }

  namespace fs = std::filesystem;
  const fs::path target(args[0]);

  // Collect and parse the spec files (parse errors name the offending
  // file): every *.json in a directory -- each read once; manifests,
  // i.e. objects with a "specs" key, are skipped -- or the manifest's
  // listed paths, resolved relative to the manifest.
  std::vector<fs::path> spec_paths;
  std::vector<scenario::ScenarioSpec> specs;
  if (fs::is_directory(target)) {
    std::vector<fs::path> candidates;
    for (const fs::directory_entry& entry : fs::directory_iterator(target)) {
      if (entry.path().extension() == ".json" && entry.is_regular_file()) {
        candidates.push_back(entry.path());
      }
    }
    std::sort(candidates.begin(), candidates.end());
    for (const fs::path& path : candidates) {
      const io::Json parsed = io::parse_json_file(path.string());
      if (parsed.is_object() && parsed.contains("specs")) {
        continue;  // a manifest living next to its specs
      }
      specs.push_back(scenario::load_spec_json(parsed, path.string()));
      spec_paths.push_back(path);
    }
  } else {
    const io::Json manifest = io::parse_json_file(target.string());
    core::check_known_keys(manifest, "batch manifest '" + target.string() + "'",
                           {"name", "specs"});
    for (const io::Json& entry : manifest.at("specs").as_array()) {
      const fs::path listed(entry.as_string());
      spec_paths.push_back(listed.is_absolute() ? listed
                                                : target.parent_path() / listed);
      specs.push_back(scenario::load_spec(spec_paths.back().string()));
    }
  }
  if (spec_paths.empty()) {
    err << "batch: no scenario specs found in '" << args[0] << "'\n";
    return 2;
  }

  const std::vector<scenario::ScenarioResult> results =
      make_engine(context).run_batch(specs);

  // Per-spec result JSON under the output directory, named after the spec
  // file (collisions get a numeric suffix so nothing is overwritten;
  // "index.json" is reserved for the aggregate index written below).
  const std::string out_dir = context.output.value_or("batch_results");
  std::vector<std::string> taken{"index.json"};
  std::vector<std::string> filenames;
  filenames.reserve(results.size());
  for (const fs::path& path : spec_paths) {
    std::string stem = path.stem().string();
    std::string candidate = stem + ".json";
    int suffix = 2;
    while (std::find(taken.begin(), taken.end(), candidate) != taken.end()) {
      candidate = stem + "-" + std::to_string(suffix++) + ".json";
    }
    taken.push_back(candidate);
    filenames.push_back(std::move(candidate));
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    io::write_json_file((fs::path(out_dir) / filenames[i]).string(),
                        scenario::result_to_json(results[i]));
  }

  if (validate) {
    for (const std::string& filename : filenames) {
      const std::string path = (fs::path(out_dir) / filename).string();
      const io::Json written = io::parse_json_file(path);
      const io::Json reserialized =
          scenario::result_to_json(scenario::result_from_json(written));
      // Byte-compare the canonical compact forms (appended in place --
      // no per-spec multi-MB pretty temporaries as before).
      std::string written_text;
      written.dump_to(written_text, 0);
      std::string reserialized_text;
      reserialized.dump_to(reserialized_text, 0);
      if (written_text != reserialized_text) {
        err << "batch: result '" << path << "' failed the canonical round-trip\n";
        return 1;
      }
    }
  }

  // Aggregate index: one row per spec with its headline numbers and the
  // result file it lowered into.
  report::ResultFrame index;
  index.name = "batch";
  index.columns = {report::Column{.name = "spec", .unit = ""},
                   report::Column{.name = "scenario", .unit = ""},
                   report::Column{.name = "kind", .unit = ""},
                   report::Column{.name = "domain", .unit = ""},
                   report::Column{.name = "platforms", .unit = "", .precision = 4},
                   report::Column{.name = "points", .unit = "", .precision = 6},
                   report::Column{.name = "baseline total", .unit = "t CO2e",
                                  .precision = 5},
                   report::Column{.name = "ratio", .unit = "", .precision = 4},
                   report::Column{.name = "result", .unit = ""}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const scenario::ScenarioResult& result = results[i];
    report::Cell total(nullptr);
    report::Cell ratio(nullptr);
    if (!result.points.empty()) {
      total = result.points.front().platforms.front().total.total().in(
          units::unit::t_co2e);
      if (result.points.front().platforms.size() > 1) {
        ratio = result.points.front().ratio(1);
      }
    }
    index.add_row({report::Cell(spec_paths[i].filename().string()),
                   report::Cell(result.spec.name),
                   report::Cell(to_string(result.spec.kind)),
                   report::Cell(to_string(result.spec.domain)),
                   report::Cell(static_cast<double>(result.platform_names.size())),
                   report::Cell(static_cast<double>(result.points.size())), total, ratio,
                   report::Cell(filenames[i])});
  }
  io::write_json_file((fs::path(out_dir) / "index.json").string(),
                      report::frame_to_json(index));

  const std::vector<report::ResultFrame> frames{std::move(index)};
  report::render_frames(frames, context.format, out);
  if (context.format == report::OutputFormat::text) {
    // Keep the machine formats pure: the summary line is text-only.
    out << "wrote " << results.size() << " result(s) + index.json to " << out_dir
        << "\n";
  }
  return 0;
}

int dispatch(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  // Strip the global flags (valid anywhere before/after the command name)
  // into the context handed to the command body.
  CommandContext context;
  std::vector<std::string> rest;
  rest.reserve(args.size());
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threads") {
      if (i + 1 >= args.size()) {
        err << "--threads: missing worker count\n";
        return 2;
      }
      // Strict parse (trailing garbage and overflow rejected), same rules
      // as the GREENFPGA_THREADS environment path; the engine clamps to
      // its kMaxThreads pool bound.
      const std::string& value = args[i + 1];
      char* end = nullptr;
      errno = 0;
      const long parsed = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE ||
          parsed < 1) {
        err << "--threads: invalid worker count '" << value << "'\n";
        return 2;
      }
      context.threads = static_cast<int>(
          std::min<long>(parsed, scenario::Engine::kMaxThreads));
      ++i;
    } else if (args[i] == "--format") {
      if (i + 1 >= args.size()) {
        err << "--format: missing format (text, json, csv, md)\n";
        return 2;
      }
      const auto format = report::parse_output_format(args[i + 1]);
      if (!format) {
        err << "--format: unknown format '" << args[i + 1]
            << "' (text, json, csv, md)\n";
        return 2;
      }
      context.format = *format;
      ++i;
    } else if (args[i] == "--output") {
      if (i + 1 >= args.size()) {
        err << "--output: missing path\n";
        return 2;
      }
      context.output = args[i + 1];
      ++i;
    } else {
      rest.push_back(args[i]);
    }
  }

  if (rest.empty()) {
    return print_usage(err);
  }
  if (rest[0] == "--help" || rest[0] == "-h" || rest[0] == "help") {
    return print_usage(out, /*error=*/false);
  }
  try {
    const std::string command = rest[0];
    rest.erase(rest.begin());
    if (command == "run") {
      return run_spec(context, rest, out, err);
    }
    if (command == "serve") {
      return run_serve(context, rest, out, err);
    }
    if (command == "batch") {
      return run_batch(context, rest, out, err);
    }
    if (command == "bench") {
      return run_bench(context, rest, out, err);
    }
    if (command == "frontier") {
      return run_frontier(context, rest, out, err);
    }
    if (command == "mc") {
      return run_mc(context, rest, out, err);
    }
    if (command == "fleet") {
      return run_fleet(context, rest, out, err);
    }
    if (command == "compare") {
      return run_compare(context, rest, out, err);
    }
    if (command == "sweep") {
      return run_sweep(context, rest, out, err);
    }
    if (command == "industry") {
      return run_industry(context, rest, out, err);
    }
    if (command == "nodes") {
      return run_nodes(context, rest, out, err);
    }
    if (command == "figures") {
      return run_figures(context, rest, out, err);
    }
    if (command == "dump-config") {
      return run_dump_config(context, rest, out, err);
    }
    err << "unknown command '" << command << "'\n";
    return print_usage(err);
  } catch (const std::exception& error) {
    err << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace greenfpga::cli
