/// \file commands.cpp
/// The six `greenfpga` subcommands as stream-parameterised entry points.

#include "cli/commands.hpp"

#include <fstream>
#include <iostream>
#include <optional>

#include "core/comparator.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "device/catalog.hpp"
#include "report/figure_writer.hpp"
#include "report/markdown_report.hpp"
#include "scenario/node_dse.hpp"
#include "scenario/sensitivity.hpp"
#include "scenario/sweep.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace greenfpga::cli {

namespace {

std::optional<device::Domain> parse_domain(const std::string& text) {
  if (text == "dnn") return device::Domain::dnn;
  if (text == "imgproc") return device::Domain::imgproc;
  if (text == "crypto") return device::Domain::crypto;
  return std::nullopt;
}

void print_comparison(const std::string& title, const core::Comparison& comparison,
                      std::ostream& out) {
  out << "== " << title << " ==\n";
  const std::vector<std::pair<std::string, core::CfpBreakdown>> platforms{
      {"ASIC", comparison.asic.total},
      {"FPGA", comparison.fpga.total},
  };
  out << report::breakdown_table(platforms);
  out << "FPGA:ASIC ratio " << units::format_significant(comparison.ratio(), 4)
      << " -> greener platform: " << to_string(comparison.verdict()) << "\n\n";
}

}  // namespace

int print_usage(std::ostream& out, bool error) {
  out << "GreenFPGA: lifecycle carbon-footprint comparison of FPGA and ASIC computing\n"
         "\n"
         "usage:\n"
         "  greenfpga compare <scenario.json> [--json <out.json>] [--markdown <out.md>]\n"
         "      evaluate a scenario file (see `greenfpga dump-config` for the shape)\n"
         "  greenfpga sweep <dnn|imgproc|crypto> <apps|lifetime|volume>\n"
         "      run one of the paper's sweep experiments on a built-in testcase\n"
         "  greenfpga industry\n"
         "      evaluate the Table 3 industry testcases (paper Figs. 10-11)\n"
         "  greenfpga nodes <dnn|imgproc|crypto>\n"
         "      rank fabrication nodes for the domain's FPGA by lifecycle CFP\n"
         "  greenfpga figures\n"
         "      run every paper experiment; print measured crossovers vs paper\n"
         "  greenfpga dump-config\n"
         "      print the calibrated paper-default model suite as JSON\n";
  return error ? 2 : 0;
}

int run_compare(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    err << "compare: missing scenario file\n";
    return 2;
  }
  std::optional<std::string> json_out;
  std::optional<std::string> markdown_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      json_out = args[i + 1];
      ++i;
    } else if (args[i] == "--markdown" && i + 1 < args.size()) {
      markdown_out = args[i + 1];
      ++i;
    } else {
      err << "compare: unknown argument '" << args[i] << "'\n";
      return 2;
    }
  }

  const core::ScenarioConfig scenario = core::load_scenario(args[0]);
  const core::LifecycleModel model(scenario.suite);
  const core::Comparison comparison =
      core::compare(model, scenario.asic, scenario.fpga, scenario.schedule);
  print_comparison(scenario.name, comparison, out);

  if (json_out) {
    io::Json result = io::Json::object();
    result["scenario"] = scenario.name;
    result["asic"] = core::to_json(comparison.asic);
    result["fpga"] = core::to_json(comparison.fpga);
    result["ratio"] = comparison.ratio();
    result["greener"] = to_string(comparison.verdict());
    io::write_json_file(*json_out, result);
    out << "wrote " << *json_out << "\n";
  }
  if (markdown_out) {
    report::MarkdownReportInputs inputs;
    inputs.scenario = scenario;
    inputs.comparison = comparison;
    inputs.uncertainty =
        scenario::monte_carlo(scenario.suite,
                              device::DomainTestcase{.domain = device::Domain::dnn,
                                                     .asic = scenario.asic,
                                                     .fpga = scenario.fpga},
                              scenario.schedule, scenario::table1_ranges(), 128);
    std::ofstream file(*markdown_out);
    if (!file) {
      err << "compare: cannot write '" << *markdown_out << "'\n";
      return 1;
    }
    file << report::render_markdown_report(inputs);
    out << "wrote " << *markdown_out << "\n";
  }
  return 0;
}

int run_sweep(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.size() != 2) {
    err << "sweep: expected <domain> <variable>\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "sweep: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  const core::SweepDefaults defaults = core::paper_sweep_defaults();
  const scenario::SweepEngine engine(core::LifecycleModel(core::paper_suite()),
                                     device::domain_testcase(*domain));
  scenario::SweepSeries series;
  if (args[1] == "apps") {
    series = engine.sweep_app_count(1, 12, defaults.app_lifetime, defaults.app_volume);
  } else if (args[1] == "lifetime") {
    const std::vector<double> lifetimes = scenario::linspace(0.2, 2.5, 24);
    series = engine.sweep_lifetime(lifetimes, defaults.app_count, defaults.app_volume);
  } else if (args[1] == "volume") {
    const std::vector<double> volumes = scenario::logspace(1e3, 1e7, 25);
    series = engine.sweep_volume(volumes, defaults.app_count, defaults.app_lifetime);
  } else {
    err << "sweep: unknown variable '" << args[1] << "'\n";
    return 2;
  }
  out << "== " << to_string(*domain) << " sweep over " << series.parameter << " ==\n"
      << report::sweep_table(series) << "crossovers: " << report::crossover_summary(series)
      << "\n";
  return 0;
}

int run_industry(std::ostream& out) {
  const core::LifecycleModel model(core::industry_suite());

  // Fig. 10 setup: each FPGA runs 6 years / 3 applications / 1M volume.
  workload::Application fpga_app;
  fpga_app.name = "industry-fpga-app";
  fpga_app.lifetime = 2.0 * units::unit::years;
  fpga_app.volume = 1e6;
  const workload::Schedule fpga_schedule = workload::homogeneous_schedule(3, fpga_app);

  // Fig. 11 setup: one 6-year application, never reprogrammed.
  workload::Application asic_app;
  asic_app.name = "industry-asic-app";
  asic_app.lifetime = 6.0 * units::unit::years;
  asic_app.volume = 1e6;
  const workload::Schedule asic_schedule{asic_app};

  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  for (const device::ChipSpec& fpga : {device::industry_fpga1(), device::industry_fpga2()}) {
    rows.emplace_back(fpga.name, model.evaluate_fpga(fpga, fpga_schedule).total);
  }
  for (const device::ChipSpec& asic : {device::industry_asic1(), device::industry_asic2()}) {
    rows.emplace_back(asic.name, model.evaluate_asic(asic, asic_schedule).total);
  }
  out << "== Industry testcases (Table 3; FPGAs: 6 y / 3 apps / 1M; ASICs: 6 y / 1M) ==\n"
      << report::breakdown_table(rows);
  return 0;
}

int run_nodes(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.size() != 1) {
    err << "nodes: expected <domain>\n";
    return 2;
  }
  const auto domain = parse_domain(args[0]);
  if (!domain) {
    err << "nodes: unknown domain '" << args[0] << "'\n";
    return 2;
  }
  const scenario::NodeDse dse(core::LifecycleModel(core::paper_suite()),
                              core::paper_schedule(*domain));
  const auto candidates = dse.explore(device::domain_testcase(*domain).fpga);
  io::TextTable table;
  table.set_headers({"rank", "node", "die area", "peak power", "total [t CO2e]", "vs best"});
  int rank = 1;
  for (const scenario::NodeCandidate& candidate : candidates) {
    table.add_row({std::to_string(rank++), tech::to_string(candidate.chip.node),
                   units::format_area(candidate.chip.die_area),
                   units::format_power(candidate.chip.peak_power),
                   units::format_significant(candidate.total().in(units::unit::t_co2e), 5),
                   units::format_significant(candidate.total_vs_best, 4)});
  }
  out << "== node ranking for the " << to_string(*domain)
      << " FPGA (paper schedule: 5 apps x 2 y x 1M) ==\n"
      << table.render();
  return 0;
}

int run_figures(std::ostream& out) {
  const core::LifecycleModel model(core::paper_suite());
  const core::SweepDefaults defaults = core::paper_sweep_defaults();

  io::TextTable table;
  table.set_headers({"experiment", "domain", "paper", "measured"});
  const auto fmt = [](const std::optional<double>& x) {
    return x ? units::format_significant(*x, 4) : std::string("none");
  };

  for (const device::Domain domain : device::all_domains()) {
    const scenario::SweepEngine engine(model, device::domain_testcase(domain));

    const auto fig4 =
        engine.sweep_app_count(1, 16, defaults.app_lifetime, defaults.app_volume);
    const auto a2f = first_crossover(fig4.crossovers(), scenario::CrossoverKind::a2f);
    const char* paper_a2f = domain == device::Domain::dnn       ? "~6"
                            : domain == device::Domain::imgproc ? "~12 (past 8)"
                                                                : "1 (immediate)";
    table.add_row({"Fig. 4 A2F [apps]", to_string(domain), paper_a2f, fmt(a2f)});

    const std::vector<double> lifetimes = scenario::linspace(0.2, 2.5, 47);
    const auto fig5 =
        engine.sweep_lifetime(lifetimes, defaults.app_count, defaults.app_volume);
    const auto f2a_t = first_crossover(fig5.crossovers(), scenario::CrossoverKind::f2a);
    const char* paper_f2a_t = domain == device::Domain::dnn       ? "~1.6"
                              : domain == device::Domain::imgproc ? "none (ASIC)"
                                                                  : "none (FPGA)";
    table.add_row({"Fig. 5 F2A [years]", to_string(domain), paper_f2a_t, fmt(f2a_t)});

    const std::vector<double> volumes = scenario::logspace(1e3, 1e7, 41);
    const auto fig6 =
        engine.sweep_volume(volumes, defaults.app_count, defaults.app_lifetime);
    const auto f2a_v = first_crossover(fig6.crossovers(), scenario::CrossoverKind::f2a);
    const char* paper_f2a_v = domain == device::Domain::dnn       ? "~2e6"
                              : domain == device::Domain::imgproc ? "~3e5"
                                                                  : "none (FPGA)";
    table.add_row({"Fig. 6 F2A [units]", to_string(domain), paper_f2a_v, fmt(f2a_v)});
  }

  const scenario::SweepEngine dnn(model, device::domain_testcase(device::Domain::dnn));
  const double fig2 =
      dnn.evaluate_point(10, defaults.app_lifetime, defaults.app_volume).ratio();
  table.add_row({"Fig. 2 FPGA saving at 10 apps", "DNN", "~25 %",
                 units::format_significant(100.0 * (1.0 - fig2), 4) + " %"});

  out << "== paper-vs-measured headline summary (see EXPERIMENTS.md for analysis) ==\n"
      << table.render();
  return 0;
}

int run_dump_config(std::ostream& out) {
  io::Json scenario = io::Json::object();
  scenario["name"] = "example scenario (edit me)";
  scenario["suite"] = core::to_json(core::paper_suite());
  const device::DomainTestcase testcase = device::domain_testcase(device::Domain::dnn);
  scenario["asic"] = core::to_json(testcase.asic);
  scenario["fpga"] = core::to_json(testcase.fpga);
  scenario["schedule"] = core::to_json(core::paper_schedule(device::Domain::dnn));
  out << scenario.dump() << "\n";
  return 0;
}

int dispatch(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty()) {
    return print_usage(err);
  }
  if (args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
    return print_usage(out, /*error=*/false);
  }
  try {
    const std::string& command = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (command == "compare") {
      return run_compare(rest, out, err);
    }
    if (command == "sweep") {
      return run_sweep(rest, out, err);
    }
    if (command == "industry") {
      return run_industry(out);
    }
    if (command == "nodes") {
      return run_nodes(rest, out, err);
    }
    if (command == "figures") {
      return run_figures(out);
    }
    if (command == "dump-config") {
      return run_dump_config(out);
    }
    err << "unknown command '" << command << "'\n";
    return print_usage(err);
  } catch (const std::exception& error) {
    err << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace greenfpga::cli
