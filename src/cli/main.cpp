/// \file main.cpp
/// The `greenfpga` command-line tool: a thin argv shim over cli/commands.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return greenfpga::cli::dispatch(args, std::cout, std::cerr);
}
