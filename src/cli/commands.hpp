#ifndef GREENFPGA_CLI_COMMANDS_HPP
#define GREENFPGA_CLI_COMMANDS_HPP

/// \file commands.hpp
/// The `greenfpga` CLI commands as a library, so they are unit-testable
/// with captured streams; main.cpp is a thin argv shim.
///
/// Every command has the same shape -- `(context, args, out, err)`
/// returning its process exit code: 0 success, 1 runtime failure (bad
/// config content, model error), 2 usage error.  `CommandContext` carries
/// the global flags -- `--threads N` (engine worker count; falls back to
/// the GREENFPGA_THREADS environment variable, then hardware
/// concurrency), `--format {text,json,csv,md}` (output renderer) and
/// `--output <path>` (write the rendered output to a file; the `batch`
/// results directory) -- as an explicit value, so the command layer holds
/// no mutable globals and is safe to call concurrently from one process
/// (the `serve` daemon handles many requests at once).  `dispatch` parses
/// the global flags into a context, routes to the command, and maps
/// uncaught exceptions to exit code 1 with a message on `err`.
///
/// Commands parse arguments and assemble data; *rendering* lives in
/// `report::` (`render_result` / `render_frames` over the frame IR), so
/// no scenario kind is formatted here.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "report/result_render.hpp"

namespace greenfpga::cli {

/// The global flags of one invocation, threaded explicitly through every
/// command (no process-wide state).
struct CommandContext {
  /// Engine worker count; 0 = GREENFPGA_THREADS, else hardware
  /// concurrency (see scenario::Engine::default_threads).
  int threads = 0;
  report::OutputFormat format = report::OutputFormat::text;
  /// Output file path (for `batch`: the results directory).
  std::optional<std::string> output;
};

/// Print the usage text; returns exit code 2 (callers print usage on
/// errors) -- pass `error = false` for `--help`, which exits 0.
int print_usage(std::ostream& out, bool error = true);

/// `greenfpga run <spec.json> [--json <out.json>] [--csv <out.csv>]` --
/// evaluate any declarative scenario spec through the unified engine
/// (--csv exports per-sample Monte-Carlo totals; montecarlo kind only).
int run_spec(const CommandContext& context, const std::vector<std::string>& args,
             std::ostream& out, std::ostream& err);

/// `greenfpga serve [--port N] [--host ADDR] [--cache-capacity N]
/// [--max-connections N]` -- run the persistent HTTP evaluation daemon
/// (POST /v1/run, POST /v1/batch, GET /v1/platforms, GET /v1/stats,
/// GET /healthz) over a content-addressed result cache.  Prints the
/// listening address, then serves until the process is killed.
int run_serve(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err);

/// `greenfpga bench [--filter RE] [--quick] [--list] [--out PATH]
/// [--compare BASELINE]... [--max-regression X]` -- run the registered
/// micro-benchmark cases (engine grid, Monte-Carlo sampler, batch pool,
/// JSON codec, result cache) through the dependency-free harness in
/// src/bench/.  `--out` writes one canonical BENCH_<group>.json per case
/// group (a directory path, or a single .json file when one group ran);
/// `--compare` loads baselines (file or directory of BENCH_*.json) and
/// exits 1 naming every case whose median regressed beyond
/// `--max-regression` (a factor; default 10).  `--quick` lowers
/// warmup/repetitions only -- workloads are fixed, so medians stay
/// comparable with full-mode baselines.
int run_bench(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err);

/// `greenfpga frontier <dnn|imgproc|crypto> [--platforms a,b,...]
/// [--axes x,y] [--objective total|embodied|operational] [--samples N]
/// [--seed S] [--json <out.json>]` -- platform win-region DSE over a
/// deployment grid: per-cell winners, win fractions, breakeven boundary
/// polylines, optional Monte-Carlo win confidence.
int run_frontier(const CommandContext& context, const std::vector<std::string>& args,
                 std::ostream& out, std::ostream& err);

/// `greenfpga mc <dnn|imgproc|crypto> [--samples N] [--seed S]
/// [--csv <out.csv>] [--json <out.json>]` -- Monte-Carlo uncertainty
/// quantification over the Table 1 distributions for a built-in testcase.
int run_mc(const CommandContext& context, const std::vector<std::string>& args,
           std::ostream& out, std::ostream& err);

/// `greenfpga fleet <dnn|imgproc|crypto> [--platforms a,b,...] [--horizon Y]
/// [--utilization U] [--samples N] [--seed S] [--json <out.json>]
/// [--csv <out.csv>]` -- mixed-platform datacenter fleet sized to a
/// 24-hour traffic trace across regional grid profiles, with FPGA
/// reconfiguration amortisation and optional Monte-Carlo bands.
int run_fleet(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err);

/// `greenfpga compare <scenario.json> [--json <out.json>] [--markdown <out.md>]`.
int run_compare(const CommandContext& context, const std::vector<std::string>& args,
                std::ostream& out, std::ostream& err);

/// `greenfpga sweep <dnn|imgproc|crypto> <apps|lifetime|volume>`.
int run_sweep(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err);

/// `greenfpga industry`.
int run_industry(const CommandContext& context, const std::vector<std::string>& args,
                 std::ostream& out, std::ostream& err);

/// `greenfpga nodes <dnn|imgproc|crypto>` -- carbon-aware node ranking.
int run_nodes(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err);

/// `greenfpga figures` -- run every paper experiment and print the
/// headline crossovers next to the paper's reported values.
int run_figures(const CommandContext& context, const std::vector<std::string>& args,
                std::ostream& out, std::ostream& err);

/// `greenfpga dump-config`.
int run_dump_config(const CommandContext& context, const std::vector<std::string>& args,
                    std::ostream& out, std::ostream& err);

/// `greenfpga batch <manifest.json|directory> [--validate]` -- evaluate
/// many specs as one engine batch; writes per-spec result JSON plus an
/// aggregate index under the `context.output` directory (default
/// "batch_results").  `--validate` re-reads every emitted JSON and fails
/// unless it round-trips canonically.
int run_batch(const CommandContext& context, const std::vector<std::string>& args,
              std::ostream& out, std::ostream& err);

/// Full dispatch: `args` excludes argv[0].  Parses the global flags into
/// a `CommandContext`, then routes to the command.  Catches exceptions
/// and maps them to exit code 1 with a message on `err`.
int dispatch(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace greenfpga::cli

#endif  // GREENFPGA_CLI_COMMANDS_HPP
