#ifndef GREENFPGA_TECH_YIELD_HPP
#define GREENFPGA_TECH_YIELD_HPP

/// \file yield.hpp
/// Die-yield models.
///
/// Manufacturing CFP in ACT-style models is charged *per good die*: the
/// per-wafer carbon is divided by yielded dies, so yield enters the model
/// as a `1/Y` multiplier (paper §3.2, inherited from ACT).  Large FPGA dies
/// yield worse than small ASIC dies, which is one of the effects that makes
/// FPGA embodied carbon super-linear in the iso-performance area ratio.
///
/// Four standard models are provided; `negative_binomial` with clustering
/// factor alpha ~ 2-3 is the industry workhorse, `poisson` is the
/// conservative bound, `murphy` and `seeds` are classical alternatives kept
/// for the yield-model ablation bench.

#include <string>

#include "tech/node.hpp"
#include "units/quantity.hpp"

namespace greenfpga::tech {

enum class YieldModel {
  poisson,            ///< Y = exp(-A*D0)
  murphy,             ///< Y = ((1 - exp(-A*D0)) / (A*D0))^2
  seeds,              ///< Y = 1 / (1 + A*D0)
  negative_binomial,  ///< Y = (1 + A*D0/alpha)^(-alpha)
};

[[nodiscard]] std::string to_string(YieldModel model);

/// Parameters of a yield computation.
struct YieldSpec {
  YieldModel model = YieldModel::negative_binomial;
  /// Defect clustering factor for the negative-binomial model; typical
  /// modern-process values are 2-3.  Ignored by the other models.
  double clustering_alpha = 2.5;
  /// Multiplicative line yield (wafer-level process losses independent of
  /// die area); applied on top of the defect-limited die yield.
  double line_yield = 0.98;
};

/// Defect-limited die yield in [0, 1] for a die of `area` at defect density
/// `d0`, including line yield.  Throws std::invalid_argument for negative
/// area / defect density or non-positive alpha.
[[nodiscard]] double die_yield(units::Area area, DefectDensity d0, const YieldSpec& spec = {});

/// Gross dies per wafer for a circular wafer, using the standard
/// die-per-wafer estimate  DPW = pi*(d/2)^2/A - pi*d/sqrt(2A)
/// (area term minus edge-loss term).  `edge_exclusion` trims the usable
/// diameter.  Returns 0 when the die does not fit.
[[nodiscard]] int dies_per_wafer(units::Area die_area, double wafer_diameter_mm = 300.0,
                                 double edge_exclusion_mm = 3.0);

}  // namespace greenfpga::tech

#endif  // GREENFPGA_TECH_YIELD_HPP
