/// \file node.cpp
/// Node database: gate/defect densities, name parsing, area<->gates conversion.

#include "tech/node.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::tech {

namespace {

/// Density figures are approximate public logic-density numbers for
/// leading-edge foundry processes; defect densities are representative
/// mature-process values (defects/cm^2).  Both feed *relative* CFP
/// comparisons, which is what the paper evaluates.
constexpr std::array<TechnologyNode, 10> kNodeTable{{
    {ProcessNode::n28, 14.4, DefectDensity{0.05 / 100.0}, 1.90},
    {ProcessNode::n20, 20.8, DefectDensity{0.06 / 100.0}, 1.55},
    {ProcessNode::n16, 28.9, DefectDensity{0.07 / 100.0}, 1.30},
    {ProcessNode::n14, 32.5, DefectDensity{0.08 / 100.0}, 1.20},
    {ProcessNode::n12, 33.8, DefectDensity{0.08 / 100.0}, 1.10},
    {ProcessNode::n10, 52.5, DefectDensity{0.09 / 100.0}, 1.00},
    {ProcessNode::n8, 61.2, DefectDensity{0.09 / 100.0}, 0.92},
    {ProcessNode::n7, 91.2, DefectDensity{0.10 / 100.0}, 0.85},
    {ProcessNode::n5, 138.2, DefectDensity{0.12 / 100.0}, 0.72},
    {ProcessNode::n3, 197.0, DefectDensity{0.20 / 100.0}, 0.62},
}};

constexpr std::array<ProcessNode, 10> kAllNodes{
    ProcessNode::n28, ProcessNode::n20, ProcessNode::n16, ProcessNode::n14, ProcessNode::n12,
    ProcessNode::n10, ProcessNode::n8,  ProcessNode::n7,  ProcessNode::n5,  ProcessNode::n3,
};

}  // namespace

std::span<const ProcessNode> all_nodes() { return kAllNodes; }

std::string to_string(ProcessNode node) {
  return std::to_string(static_cast<int>(node)) + " nm";
}

std::optional<ProcessNode> parse_node(std::string_view text) {
  int value = 0;
  std::size_t i = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + (text[i] - '0');
    ++i;
  }
  if (i == 0) {
    return std::nullopt;
  }
  // Accept an optional "nm" suffix (with optional space).
  while (i < text.size() && text[i] == ' ') ++i;
  if (i != text.size() && text.substr(i) != "nm") {
    return std::nullopt;
  }
  for (const TechnologyNode& entry : kNodeTable) {
    if (static_cast<int>(entry.node) == value) {
      return entry.node;
    }
  }
  return std::nullopt;
}

units::Area TechnologyNode::area_for_gates(double gate_count) const {
  if (gate_count < 0.0) {
    throw std::invalid_argument("area_for_gates: negative gate count");
  }
  return units::Area{gate_count / gates_per_mm2()};
}

double TechnologyNode::gates_in_area(units::Area area) const {
  return area.in(units::unit::mm2) * gates_per_mm2();
}

const TechnologyNode& node_info(ProcessNode node) {
  for (const TechnologyNode& entry : kNodeTable) {
    if (entry.node == node) {
      return entry;
    }
  }
  throw std::out_of_range("node_info: unknown process node");
}

}  // namespace greenfpga::tech
