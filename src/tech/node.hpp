#ifndef GREENFPGA_TECH_NODE_HPP
#define GREENFPGA_TECH_NODE_HPP

/// \file node.hpp
/// Technology-node database: gate density and defect density per node.
///
/// GreenFPGA sizes chips in *equivalent logic gates* (2-input NAND
/// equivalents) following the paper's Eq. (4) and the `N_FPGA` capacity
/// rule.  This module provides the node-indexed data needed to convert
/// between gate counts and silicon area, plus the defect densities used by
/// the yield models.
///
/// Density values are public-domain approximations assembled from vendor
/// disclosures and WikiChip-style process summaries (the same class of
/// public data the ACT / ECO-CHIP datasets are built from); every value can
/// be overridden by constructing a custom `TechnologyNode`.

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "units/quantity.hpp"

namespace greenfpga::tech {

/// Defects per unit area (canonical: per mm^2).
using DefectDensity = units::Quantity<units::Dimension{.area = -1}>;

/// One defect per square centimetre.
inline constexpr DefectDensity per_cm2{1.0 / 100.0};

/// Process node identifier; the integer is the marketing "nm" figure.
enum class ProcessNode : std::int16_t {
  n28 = 28,
  n20 = 20,
  n16 = 16,
  n14 = 14,
  n12 = 12,
  n10 = 10,
  n8 = 8,
  n7 = 7,
  n5 = 5,
  n3 = 3,
};

/// All nodes in the database, newest last.
[[nodiscard]] std::span<const ProcessNode> all_nodes();

/// "28 nm", "7 nm", ...
[[nodiscard]] std::string to_string(ProcessNode node);

/// Parse "28", "28nm" or "28 nm"; returns nullopt for unknown nodes.
[[nodiscard]] std::optional<ProcessNode> parse_node(std::string_view text);

/// Static per-node process characteristics.
struct TechnologyNode {
  ProcessNode node = ProcessNode::n10;
  /// Logic transistor density, million transistors per mm^2.
  double transistor_density_mtr_per_mm2 = 0.0;
  /// Typical defect density for a mature process on this node.
  DefectDensity defect_density;
  /// Iso-design power relative to the 10 nm node (CV^2 f scaling as
  /// supply voltage and capacitance shrink): > 1 on older nodes, < 1 on
  /// newer ones.  Used by the node-retargeting DSE.
  double power_scale_vs_10nm = 1.0;

  /// Equivalent NAND2 logic gates per mm^2 (4 transistors per gate).
  [[nodiscard]] double gates_per_mm2() const {
    return transistor_density_mtr_per_mm2 * 1e6 / 4.0;
  }

  /// Area needed to place `gate_count` equivalent gates at this density.
  [[nodiscard]] units::Area area_for_gates(double gate_count) const;

  /// Equivalent gate capacity of a die of the given area.
  [[nodiscard]] double gates_in_area(units::Area area) const;
};

/// Database lookup; throws std::out_of_range for nodes missing from the
/// table (cannot happen for `ProcessNode` enumerators).
[[nodiscard]] const TechnologyNode& node_info(ProcessNode node);

}  // namespace greenfpga::tech

#endif  // GREENFPGA_TECH_NODE_HPP
