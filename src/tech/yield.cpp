/// \file yield.cpp
/// Poisson/Murphy/Seeds/negative-binomial die-yield models.

#include "tech/yield.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::tech {

std::string to_string(YieldModel model) {
  switch (model) {
    case YieldModel::poisson:
      return "poisson";
    case YieldModel::murphy:
      return "murphy";
    case YieldModel::seeds:
      return "seeds";
    case YieldModel::negative_binomial:
      return "negative-binomial";
  }
  return "unknown";
}

double die_yield(units::Area area, DefectDensity d0, const YieldSpec& spec) {
  if (area.canonical() < 0.0) {
    throw std::invalid_argument("die_yield: negative area");
  }
  if (d0.canonical() < 0.0) {
    throw std::invalid_argument("die_yield: negative defect density");
  }
  if (spec.line_yield < 0.0 || spec.line_yield > 1.0) {
    throw std::invalid_argument("die_yield: line yield must be in [0, 1]");
  }
  // A*D0 is dimensionless: expected defect count per die.
  const double defects = area * d0;
  double defect_yield = 1.0;
  switch (spec.model) {
    case YieldModel::poisson:
      defect_yield = std::exp(-defects);
      break;
    case YieldModel::murphy: {
      if (defects == 0.0) {
        defect_yield = 1.0;
      } else {
        const double term = (1.0 - std::exp(-defects)) / defects;
        defect_yield = term * term;
      }
      break;
    }
    case YieldModel::seeds:
      defect_yield = 1.0 / (1.0 + defects);
      break;
    case YieldModel::negative_binomial: {
      if (spec.clustering_alpha <= 0.0) {
        throw std::invalid_argument("die_yield: clustering alpha must be positive");
      }
      defect_yield = std::pow(1.0 + defects / spec.clustering_alpha, -spec.clustering_alpha);
      break;
    }
  }
  return defect_yield * spec.line_yield;
}

int dies_per_wafer(units::Area die_area, double wafer_diameter_mm, double edge_exclusion_mm) {
  const double area_mm2 = die_area.in(units::unit::mm2);
  if (area_mm2 <= 0.0) {
    throw std::invalid_argument("dies_per_wafer: die area must be positive");
  }
  const double usable_diameter = wafer_diameter_mm - 2.0 * edge_exclusion_mm;
  if (usable_diameter <= 0.0) {
    return 0;
  }
  const double radius = usable_diameter / 2.0;
  const double gross = std::numbers::pi * radius * radius / area_mm2 -
                       std::numbers::pi * usable_diameter / std::sqrt(2.0 * area_mm2);
  return gross > 0.0 ? static_cast<int>(gross) : 0;
}

}  // namespace greenfpga::tech
