#ifndef GREENFPGA_GREENFPGA_HPP
#define GREENFPGA_GREENFPGA_HPP

/// \file greenfpga.hpp
/// Umbrella header: the public GreenFPGA API in one include.
///
/// The primary entry point is the unified evaluation engine:
///
///     #include "greenfpga.hpp"
///
///     auto spec = greenfpga::scenario::ScenarioSpec::make(
///         greenfpga::scenario::ScenarioKind::sweep);
///     spec.axes = {greenfpga::scenario::AxisSpec::linear(
///         greenfpga::scenario::SweepVariable::app_count, 1, 12, 12)};
///     const auto result = greenfpga::scenario::Engine().run(spec);
///
/// See docs/ARCHITECTURE.md ("Evaluation engine") for the full map.

// Units and quantities.
#include "units/format.hpp"
#include "units/quantity.hpp"
#include "units/units.hpp"

// Process technology and ACT-style carbon models.
#include "act/carbon_intensity.hpp"
#include "act/fab_model.hpp"
#include "act/grid_profile.hpp"
#include "act/operational_model.hpp"
#include "tech/node.hpp"
#include "tech/yield.hpp"

// Devices, platforms and workloads.
#include "device/catalog.hpp"
#include "device/chip_spec.hpp"
#include "device/iso_performance.hpp"
#include "device/platform_registry.hpp"
#include "workload/application.hpp"

// Packaging and end-of-life.
#include "eol/eol_model.hpp"
#include "package/package_model.hpp"

// Core lifecycle models and configuration.
#include "core/appdev_model.hpp"
#include "core/comparator.hpp"
#include "core/config_io.hpp"
#include "core/design_model.hpp"
#include "core/lifecycle_model.hpp"
#include "core/paper_config.hpp"
#include "core/param_distributions.hpp"

// Scenarios: the unified engine plus the legacy per-module shims.
#include "scenario/breakeven.hpp"
#include "scenario/engine.hpp"
#include "scenario/heatmap.hpp"
#include "scenario/node_dse.hpp"
#include "scenario/sensitivity.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "scenario/timeline.hpp"

// I/O and reporting.
#include "io/csv.hpp"
#include "io/json.hpp"
#include "io/table.hpp"
#include "report/ascii_chart.hpp"
#include "report/figure_writer.hpp"
#include "report/markdown_report.hpp"

#endif  // GREENFPGA_GREENFPGA_HPP
