#ifndef GREENFPGA_UNITS_UNITS_HPP
#define GREENFPGA_UNITS_UNITS_HPP

/// \file units.hpp
/// Concrete unit constants and user-defined literals.
///
/// Unit constants are `constexpr Quantity` values equal to one unit in
/// canonical form, so `3.0 * unit::t_co2e` is three tonnes of CO2e and
/// `q.in(unit::t_co2e)` reads a quantity back out in tonnes.
///
/// Conventions used throughout GreenFPGA (documented once, here):
///   * One year of wall-clock time is 8760 hours (365 days); application
///     lifetimes in the paper are calendar years of deployment.
///   * One month is 1/12 year (730 h), matching Table 1's app-dev times.
///   * "ton" follows the EPA WARM source data (short ton, 907.18 kg);
///     "tonne" (metric, 1000 kg) is used for CO2e masses.

#include "units/quantity.hpp"

namespace greenfpga::units::unit {

// -- carbon mass (canonical: kg CO2e) ---------------------------------------
inline constexpr CarbonMass kg_co2e{1.0};
inline constexpr CarbonMass g_co2e{1e-3};
inline constexpr CarbonMass t_co2e{1e3};   ///< metric tonne CO2e
inline constexpr CarbonMass kt_co2e{1e6};  ///< kilotonne CO2e
inline constexpr CarbonMass mt_co2e{1e9};  ///< megatonne CO2e

// -- energy (canonical: kWh) -------------------------------------------------
inline constexpr Energy kwh{1.0};
inline constexpr Energy wh{1e-3};
inline constexpr Energy mwh{1e3};
inline constexpr Energy gwh{1e6};

// -- time (canonical: hours) ---------------------------------------------------
inline constexpr TimeSpan hours{1.0};
inline constexpr TimeSpan days{24.0};
inline constexpr TimeSpan years{8760.0};
inline constexpr TimeSpan months{8760.0 / 12.0};
inline constexpr TimeSpan minutes{1.0 / 60.0};
inline constexpr TimeSpan seconds{1.0 / 3600.0};

// -- area (canonical: mm^2) ---------------------------------------------------
inline constexpr Area mm2{1.0};
inline constexpr Area cm2{100.0};

// -- physical mass (canonical: kg) --------------------------------------------
inline constexpr Mass kg{1.0};
inline constexpr Mass g{1e-3};
inline constexpr Mass tonne{1000.0};          ///< metric tonne
inline constexpr Mass short_ton{907.18474};   ///< EPA WARM "ton"

// -- power (canonical: kW) ------------------------------------------------------
inline constexpr Power kw{1.0};
inline constexpr Power w{1e-3};
inline constexpr Power mw{1e3};

// -- carbon intensity (canonical: kg CO2e / kWh) -------------------------------
inline constexpr CarbonIntensity kg_per_kwh{1.0};
inline constexpr CarbonIntensity g_per_kwh{1e-3};

// -- fab per-area factors (canonical: per mm^2) ----------------------------------
inline constexpr EnergyPerArea kwh_per_cm2{1.0 / 100.0};
inline constexpr EnergyPerArea kwh_per_mm2{1.0};
inline constexpr CarbonPerArea kg_per_cm2{1.0 / 100.0};
inline constexpr CarbonPerArea g_per_cm2{1e-3 / 100.0};
inline constexpr CarbonPerArea kg_per_mm2{1.0};

// -- EOL emission factors (canonical: kg CO2e / kg material) ----------------------
inline constexpr CarbonPerMass kg_per_kg{1.0};
/// EPA WARM tables quote MTCO2E per short ton of material; despite the
/// confusing "MT" prefix the WARM documentation defines it as *metric tons*
/// CO2E per short ton processed.
inline constexpr CarbonPerMass mtco2e_per_ton{1000.0 / 907.18474};

// -- mass densities (canonical: kg / mm^2) ----------------------------------------
inline constexpr MassPerArea g_per_cm2_mass{1e-3 / 100.0};

}  // namespace greenfpga::units::unit

namespace greenfpga::units::literals {

// User-defined literals for the most common units; handy in tests and
// examples:  `auto c = 2.5_t_co2e;  auto t = 1.6_years;`
[[nodiscard]] constexpr CarbonMass operator""_kg_co2e(long double v) {
  return CarbonMass{static_cast<double>(v)};
}
[[nodiscard]] constexpr CarbonMass operator""_t_co2e(long double v) {
  return CarbonMass{static_cast<double>(v) * 1e3};
}
[[nodiscard]] constexpr Energy operator""_kwh(long double v) {
  return Energy{static_cast<double>(v)};
}
[[nodiscard]] constexpr Energy operator""_gwh(long double v) {
  return Energy{static_cast<double>(v) * 1e6};
}
[[nodiscard]] constexpr TimeSpan operator""_hours(long double v) {
  return TimeSpan{static_cast<double>(v)};
}
[[nodiscard]] constexpr TimeSpan operator""_years(long double v) {
  return TimeSpan{static_cast<double>(v) * 8760.0};
}
[[nodiscard]] constexpr TimeSpan operator""_months(long double v) {
  return TimeSpan{static_cast<double>(v) * 8760.0 / 12.0};
}
[[nodiscard]] constexpr Area operator""_mm2(long double v) {
  return Area{static_cast<double>(v)};
}
[[nodiscard]] constexpr Area operator""_cm2(long double v) {
  return Area{static_cast<double>(v) * 100.0};
}
[[nodiscard]] constexpr Power operator""_w(long double v) {
  return Power{static_cast<double>(v) * 1e-3};
}
[[nodiscard]] constexpr Power operator""_kw(long double v) {
  return Power{static_cast<double>(v)};
}
[[nodiscard]] constexpr CarbonIntensity operator""_g_per_kwh(long double v) {
  return CarbonIntensity{static_cast<double>(v) * 1e-3};
}

}  // namespace greenfpga::units::literals

#endif  // GREENFPGA_UNITS_UNITS_HPP
