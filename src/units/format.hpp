#ifndef GREENFPGA_UNITS_FORMAT_HPP
#define GREENFPGA_UNITS_FORMAT_HPP

/// \file format.hpp
/// Human-readable formatting of quantities with automatic scale selection.
///
/// The report and CLI layers print carbon masses spanning grams (per-chip
/// EOL credits) to kilotonnes (fleet embodied carbon); these helpers pick a
/// sensible scale and render a fixed number of significant digits.

#include <string>

#include "units/quantity.hpp"

namespace greenfpga::units {

/// "1.23 kg", "45.6 t", "7.89 kt" ... of CO2e.
[[nodiscard]] std::string format_carbon(CarbonMass value, int significant_digits = 4);

/// "123 Wh", "4.5 kWh", "6.7 GWh".
[[nodiscard]] std::string format_energy(Energy value, int significant_digits = 4);

/// "75 W", "1.2 kW", "3.4 MW".
[[nodiscard]] std::string format_power(Power value, int significant_digits = 4);

/// "36 min", "12 h", "3.5 months", "1.6 years" -- picks the largest unit
/// that keeps the value >= 1.
[[nodiscard]] std::string format_time(TimeSpan value, int significant_digits = 4);

/// "340 mm^2" or "5.5 cm^2" (cm^2 once >= 1000 mm^2).
[[nodiscard]] std::string format_area(Area value, int significant_digits = 4);

/// "380 g/kWh" or "0.82 kg/kWh".
[[nodiscard]] std::string format_carbon_intensity(CarbonIntensity value,
                                                  int significant_digits = 4);

/// Render a plain double with the given significant digits (shared helper,
/// also used by the table formatter).
[[nodiscard]] std::string format_significant(double value, int significant_digits);

}  // namespace greenfpga::units

#endif  // GREENFPGA_UNITS_FORMAT_HPP
