#ifndef GREENFPGA_UNITS_DIMENSION_HPP
#define GREENFPGA_UNITS_DIMENSION_HPP

/// \file dimension.hpp
/// Compile-time dimension vectors for the quantity system.
///
/// GreenFPGA works in a small, domain-specific dimension space rather than
/// full SI: carbon mass (CO2-equivalent), electrical energy, time, silicon
/// area and physical (e-waste) mass are the base dimensions that actually
/// appear in the paper's equations.  Keeping CO2e-mass distinct from
/// physical mass prevents the classic modeling bug of adding grams of
/// e-waste to grams of emitted CO2.

namespace greenfpga::units {

/// A vector of integer exponents over the GreenFPGA base dimensions.
///
/// A `Quantity<Dimension{...}>` carries its dimension in the type, so
/// mixing, say, energy and carbon mass is a compile error, while
/// CarbonIntensity * Energy -> CarbonMass type-checks automatically.
struct Dimension {
  int co2e = 0;    ///< CO2-equivalent mass (canonical unit: kilogram CO2e)
  int energy = 0;  ///< electrical energy (canonical unit: kilowatt-hour)
  int time = 0;    ///< wall-clock time (canonical unit: hour)
  int area = 0;    ///< silicon / package area (canonical unit: square millimetre)
  int mass = 0;    ///< physical material mass (canonical unit: kilogram)

  friend constexpr bool operator==(const Dimension&, const Dimension&) = default;
};

/// Dimension of the product of two quantities.
[[nodiscard]] constexpr Dimension operator+(const Dimension& a, const Dimension& b) {
  return Dimension{a.co2e + b.co2e, a.energy + b.energy, a.time + b.time,
                   a.area + b.area, a.mass + b.mass};
}

/// Dimension of the quotient of two quantities.
[[nodiscard]] constexpr Dimension operator-(const Dimension& a, const Dimension& b) {
  return Dimension{a.co2e - b.co2e, a.energy - b.energy, a.time - b.time,
                   a.area - b.area, a.mass - b.mass};
}

/// Named base and derived dimensions used throughout the library.
namespace dim {
inline constexpr Dimension scalar{};
inline constexpr Dimension carbon{.co2e = 1};
inline constexpr Dimension energy{.energy = 1};
inline constexpr Dimension time{.time = 1};
inline constexpr Dimension area{.area = 1};
inline constexpr Dimension mass{.mass = 1};

/// kW: energy per unit time.
inline constexpr Dimension power = energy - time;
/// g CO2e per kWh: carbon emitted per unit of energy drawn.
inline constexpr Dimension carbon_intensity = carbon - energy;
/// kg CO2e per unit time (e.g. per year of operation).
inline constexpr Dimension carbon_rate = carbon - time;
/// kWh per cm^2 of silicon: the ACT "EPA" fab parameter.
inline constexpr Dimension energy_per_area = energy - area;
/// kg CO2e per cm^2 of silicon: the ACT "GPA"/"MPA" fab parameters.
inline constexpr Dimension carbon_per_area = carbon - area;
/// kg CO2e per kg of e-waste: EPA WARM discard/recycle factors.
inline constexpr Dimension carbon_per_mass = carbon - mass;
/// kg of material per mm^2 of die/package: device mass densities.
inline constexpr Dimension mass_per_area = mass - area;
}  // namespace dim

}  // namespace greenfpga::units

#endif  // GREENFPGA_UNITS_DIMENSION_HPP
