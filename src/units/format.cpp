/// \file format.cpp
/// Scale-selecting human-readable quantity formatting.

#include "units/format.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <span>

#include "units/units.hpp"

namespace greenfpga::units {

namespace {

/// One rung of a unit ladder: threshold (in canonical units) above which
/// the rung applies, divisor to convert, and suffix to print.
struct Scale {
  double threshold;
  double divisor;
  const char* suffix;
};

/// Picks the largest rung whose threshold the magnitude reaches (ladders are
/// ordered largest first); falls back to the last rung.
std::string format_scaled(double canonical, std::span<const Scale> ladder,
                          int significant_digits) {
  const double magnitude = std::fabs(canonical);
  for (const Scale& s : ladder) {
    if (magnitude >= s.threshold) {
      return format_significant(canonical / s.divisor, significant_digits) + " " + s.suffix;
    }
  }
  const Scale& last = ladder.back();
  return format_significant(canonical / last.divisor, significant_digits) + " " + last.suffix;
}

}  // namespace

std::string format_significant(double value, int significant_digits) {
  if (!std::isfinite(value)) {
    return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  }
  if (value == 0.0) {
    return "0";
  }
  const double magnitude = std::fabs(value);
  // Decimal places so that `significant_digits` digits survive overall.
  const int integer_digits = static_cast<int>(std::floor(std::log10(magnitude))) + 1;
  int decimals = significant_digits - integer_digits;
  if (decimals < 0) {
    decimals = 0;
  }
  if (decimals > 12) {
    decimals = 12;
  }
  std::array<char, 64> buffer{};
  std::snprintf(buffer.data(), buffer.size(), "%.*f", decimals, value);
  std::string out{buffer.data()};
  // Trim trailing zeros after a decimal point ("4.500" -> "4.5", "3.0" -> "3").
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') {
      out.pop_back();
    }
    if (!out.empty() && out.back() == '.') {
      out.pop_back();
    }
  }
  return out;
}

std::string format_carbon(CarbonMass value, int significant_digits) {
  static constexpr std::array<Scale, 5> ladder{{
      {1e9, 1e9, "Mt CO2e"},
      {1e6, 1e6, "kt CO2e"},
      {1e3, 1e3, "t CO2e"},
      {1.0, 1.0, "kg CO2e"},
      {0.0, 1e-3, "g CO2e"},
  }};
  return format_scaled(value.canonical(), ladder, significant_digits);
}

std::string format_energy(Energy value, int significant_digits) {
  static constexpr std::array<Scale, 4> ladder{{
      {1e6, 1e6, "GWh"},
      {1e3, 1e3, "MWh"},
      {1.0, 1.0, "kWh"},
      {0.0, 1e-3, "Wh"},
  }};
  return format_scaled(value.canonical(), ladder, significant_digits);
}

std::string format_power(Power value, int significant_digits) {
  static constexpr std::array<Scale, 3> ladder{{
      {1e3, 1e3, "MW"},
      {1.0, 1.0, "kW"},
      {0.0, 1e-3, "W"},
  }};
  return format_scaled(value.canonical(), ladder, significant_digits);
}

std::string format_time(TimeSpan value, int significant_digits) {
  static constexpr std::array<Scale, 5> ladder{{
      {8760.0, 8760.0, "years"},
      {730.0, 730.0, "months"},
      {24.0, 24.0, "days"},
      {1.0, 1.0, "h"},
      {0.0, 1.0 / 60.0, "min"},
  }};
  return format_scaled(value.canonical(), ladder, significant_digits);
}

std::string format_area(Area value, int significant_digits) {
  static constexpr std::array<Scale, 2> ladder{{
      {1000.0, 100.0, "cm^2"},
      {0.0, 1.0, "mm^2"},
  }};
  return format_scaled(value.canonical(), ladder, significant_digits);
}

std::string format_carbon_intensity(CarbonIntensity value, int significant_digits) {
  static constexpr std::array<Scale, 2> ladder{{
      {1.0, 1.0, "kg CO2e/kWh"},
      {0.0, 1e-3, "g CO2e/kWh"},
  }};
  return format_scaled(value.canonical(), ladder, significant_digits);
}

}  // namespace greenfpga::units
