#ifndef GREENFPGA_UNITS_QUANTITY_HPP
#define GREENFPGA_UNITS_QUANTITY_HPP

/// \file quantity.hpp
/// A dimension-checked floating-point quantity.
///
/// Every physical value in GreenFPGA (carbon masses, energies, powers,
/// areas, lifetimes, carbon intensities, fab per-area factors, ...) is a
/// `Quantity<D>`.  The dimension `D` is part of the type, so dimensional
/// errors are compile errors, and multiplying or dividing quantities
/// produces the correctly-dimensioned result type.
///
/// Values are stored in canonical units (kg CO2e, kWh, hours, mm^2, kg);
/// construction and read-out go through unit constants defined in
/// units.hpp, e.g.:
///
///     CarbonMass c = 3.2 * unit::t_co2e;       // 3.2 tonnes CO2e
///     double in_kg = c.in(unit::kg_co2e);      // 3200.0
///     CarbonIntensity ci = 380.0 * unit::g_per_kwh;
///     CarbonMass op = ci * (500.0 * unit::kwh);  // dimension-checked

#include <cmath>
#include <compare>

#include "units/dimension.hpp"

namespace greenfpga::units {

template <Dimension D>
class Quantity {
 public:
  /// Zero-valued quantity.
  constexpr Quantity() = default;

  /// Construct from a value already expressed in canonical units.  Explicit
  /// on purpose: use `value * unit::...` to attach units in user code.
  constexpr explicit Quantity(double canonical) : value_(canonical) {}

  /// The stored value in canonical units.  Prefer `in(unit)` in user code.
  [[nodiscard]] constexpr double canonical() const { return value_; }

  /// This quantity expressed as a multiple of `unit` (same dimension).
  [[nodiscard]] constexpr double in(Quantity unit) const { return value_ / unit.value_; }

  /// Dimensionless quantities convert back to plain numbers implicitly.
  constexpr operator double() const  // NOLINT(google-explicit-constructor)
    requires(D == Dimension{})
  {
    return value_;
  }

  [[nodiscard]] constexpr bool is_zero() const { return value_ == 0.0; }
  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(value_); }

  // -- additive group ------------------------------------------------------
  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  [[nodiscard]] friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{a.value_ + b.value_};
  }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{a.value_ - b.value_};
  }
  [[nodiscard]] friend constexpr Quantity operator-(Quantity a) { return Quantity{-a.value_}; }

  // -- scaling by dimensionless numbers -------------------------------------
  [[nodiscard]] friend constexpr Quantity operator*(Quantity a, double s) {
    return Quantity{a.value_ * s};
  }
  [[nodiscard]] friend constexpr Quantity operator*(double s, Quantity a) {
    return Quantity{a.value_ * s};
  }
  [[nodiscard]] friend constexpr Quantity operator/(Quantity a, double s) {
    return Quantity{a.value_ / s};
  }

  // -- ordering -------------------------------------------------------------
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

 private:
  double value_ = 0.0;
};

/// Product of two quantities: dimensions add.
template <Dimension A, Dimension B>
[[nodiscard]] constexpr Quantity<A + B> operator*(Quantity<A> a, Quantity<B> b) {
  return Quantity<A + B>{a.canonical() * b.canonical()};
}

/// Quotient of two quantities: dimensions subtract.
template <Dimension A, Dimension B>
[[nodiscard]] constexpr Quantity<A - B> operator/(Quantity<A> a, Quantity<B> b) {
  return Quantity<A - B>{a.canonical() / b.canonical()};
}

/// Inverse of a quantity: scalar divided by a quantity.
template <Dimension A>
[[nodiscard]] constexpr Quantity<Dimension{} - A> operator/(double s, Quantity<A> a) {
  return Quantity<Dimension{} - A>{s / a.canonical()};
}

/// Absolute value, e.g. for tolerance checks in tests.
template <Dimension D>
[[nodiscard]] constexpr Quantity<D> abs(Quantity<D> q) {
  return Quantity<D>{q.canonical() < 0 ? -q.canonical() : q.canonical()};
}

template <Dimension D>
[[nodiscard]] constexpr Quantity<D> min(Quantity<D> a, Quantity<D> b) {
  return a < b ? a : b;
}

template <Dimension D>
[[nodiscard]] constexpr Quantity<D> max(Quantity<D> a, Quantity<D> b) {
  return a < b ? b : a;
}

// ---------------------------------------------------------------------------
// Domain type aliases.  These are the vocabulary types of the whole library.
// ---------------------------------------------------------------------------

/// CO2-equivalent mass (canonical: kg CO2e).  The output of every model.
using CarbonMass = Quantity<dim::carbon>;
/// Electrical energy (canonical: kWh).
using Energy = Quantity<dim::energy>;
/// Wall-clock time (canonical: hours).
using TimeSpan = Quantity<dim::time>;
/// Silicon or package area (canonical: mm^2).
using Area = Quantity<dim::area>;
/// Physical material mass (canonical: kg).  Used by the end-of-life model.
using Mass = Quantity<dim::mass>;
/// Electrical power (canonical: kW).
using Power = Quantity<dim::power>;
/// Carbon intensity of an energy source (canonical: kg CO2e per kWh).
using CarbonIntensity = Quantity<dim::carbon_intensity>;
/// Carbon emission rate (canonical: kg CO2e per hour).
using CarbonRate = Quantity<dim::carbon_rate>;
/// Fab energy-per-area factor, ACT's "EPA" (canonical: kWh per mm^2).
using EnergyPerArea = Quantity<dim::energy_per_area>;
/// Fab carbon-per-area factor, ACT's "GPA"/"MPA" (canonical: kg CO2e per mm^2).
using CarbonPerArea = Quantity<dim::carbon_per_area>;
/// EPA WARM-style emission factor (canonical: kg CO2e per kg of material).
using CarbonPerMass = Quantity<dim::carbon_per_mass>;
/// Mass density per unit area (canonical: kg per mm^2).
using MassPerArea = Quantity<dim::mass_per_area>;

}  // namespace greenfpga::units

#endif  // GREENFPGA_UNITS_QUANTITY_HPP
