/// \file application.cpp
/// Application/schedule validation, homogeneous schedules, paper prototypes.

#include "workload/application.hpp"

#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::workload {

void Application::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("Application: name must not be empty");
  }
  if (lifetime.canonical() <= 0.0) {
    throw std::invalid_argument("Application '" + name + "': lifetime must be positive");
  }
  if (volume <= 0.0) {
    throw std::invalid_argument("Application '" + name + "': volume must be positive");
  }
  if (size_gates < 0.0) {
    throw std::invalid_argument("Application '" + name + "': size must be non-negative");
  }
}

units::TimeSpan total_lifetime(const Schedule& schedule) {
  units::TimeSpan total{};
  for (const Application& app : schedule) {
    total += app.lifetime;
  }
  return total;
}

Schedule homogeneous_schedule(int count, const Application& prototype) {
  if (count < 0) {
    throw std::invalid_argument("homogeneous_schedule: negative count");
  }
  prototype.validate();
  Schedule schedule;
  schedule.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Application app = prototype;
    app.name = prototype.name + "-" + std::to_string(i + 1);
    schedule.push_back(std::move(app));
  }
  return schedule;
}

Application paper_application(device::Domain domain) {
  Application app;
  app.name = to_string(domain) + "-app";
  app.domain = domain;
  app.lifetime = 2.0 * units::unit::years;
  app.volume = 1e6;
  app.size_gates = 0.0;  // sized to the device: single-chip deployments
  return app;
}

void validate(const Schedule& schedule) {
  if (schedule.empty()) {
    throw std::invalid_argument("Schedule: must contain at least one application");
  }
  for (const Application& app : schedule) {
    app.validate();
  }
}

}  // namespace greenfpga::workload
