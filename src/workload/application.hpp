#ifndef GREENFPGA_WORKLOAD_APPLICATION_HPP
#define GREENFPGA_WORKLOAD_APPLICATION_HPP

/// \file application.hpp
/// Application and schedule model.
///
/// The paper's unit of work is an *application*: something deployed at
/// volume `N_vol` for lifetime `T_i`.  An ASIC platform designs and
/// manufactures a new chip per application; an FPGA platform reconfigures
/// the same fleet.  A `Schedule` is the ordered list of applications a
/// platform serves over the evaluation (the paper's `N_app` applications,
/// assumed sequential: a new application replaces the previous one).

#include <string>
#include <vector>

#include "device/chip_spec.hpp"
#include "units/quantity.hpp"
#include "units/units.hpp"

namespace greenfpga::workload {

/// One deployed application.
struct Application {
  std::string name;
  device::Domain domain = device::Domain::dnn;
  /// Application lifetime T_i: how long this application stays deployed.
  units::TimeSpan lifetime = 2.0 * units::unit::years;
  /// Deployment volume N_vol: accelerator units in the field.
  double volume = 1e6;
  /// Application size in equivalent logic gates (drives N_FPGA).  Zero
  /// means "sized to the device capacity" (the paper's single-chip cases).
  double size_gates = 0.0;

  void validate() const;
};

/// Sequential list of applications served by one platform.
using Schedule = std::vector<Application>;

/// Total deployed wall-clock time of a schedule (sum of lifetimes).
[[nodiscard]] units::TimeSpan total_lifetime(const Schedule& schedule);

/// A schedule of `count` identical applications (the paper's sweep
/// workloads): names are suffixed -1, -2, ...
[[nodiscard]] Schedule homogeneous_schedule(int count, const Application& prototype);

/// The paper's canonical sweep prototype for a domain: T_i = 2 years,
/// N_vol = 1e6, sized to the domain testcase device.
[[nodiscard]] Application paper_application(device::Domain domain);

void validate(const Schedule& schedule);

}  // namespace greenfpga::workload

#endif  // GREENFPGA_WORKLOAD_APPLICATION_HPP
