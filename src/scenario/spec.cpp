/// \file spec.cpp
/// ScenarioSpec helpers, validation and canonical JSON round-trip.

#include "scenario/spec.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

using io::Json;

/// Unknown-key guard, shared with the core config readers.
void check_keys(const Json& json, const std::string& context,
                std::initializer_list<std::string_view> allowed) {
  core::check_known_keys(json, context, allowed);
}

std::string domain_token(device::Domain domain) {
  switch (domain) {
    case device::Domain::dnn:
      return "dnn";
    case device::Domain::imgproc:
      return "imgproc";
    case device::Domain::crypto:
      return "crypto";
  }
  return "dnn";
}

device::Domain domain_from_token(const std::string& text) {
  if (text == "dnn" || text == "DNN") return device::Domain::dnn;
  if (text == "imgproc" || text == "ImgProc") return device::Domain::imgproc;
  if (text == "crypto" || text == "Crypto") return device::Domain::crypto;
  throw core::ConfigError("unknown domain \"" + text + "\"");
}

}  // namespace

std::string to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::compare:
      return "compare";
    case ScenarioKind::sweep:
      return "sweep";
    case ScenarioKind::grid:
      return "grid";
    case ScenarioKind::timeline:
      return "timeline";
    case ScenarioKind::node_dse:
      return "node_dse";
    case ScenarioKind::breakeven:
      return "breakeven";
    case ScenarioKind::sensitivity:
      return "sensitivity";
    case ScenarioKind::montecarlo:
      return "montecarlo";
    case ScenarioKind::frontier:
      return "frontier";
  }
  return "unknown";
}

std::optional<ScenarioKind> parse_scenario_kind(std::string_view text) {
  if (text == "compare") return ScenarioKind::compare;
  if (text == "sweep") return ScenarioKind::sweep;
  if (text == "grid" || text == "heatmap") return ScenarioKind::grid;
  if (text == "timeline") return ScenarioKind::timeline;
  if (text == "node_dse" || text == "nodes") return ScenarioKind::node_dse;
  if (text == "breakeven") return ScenarioKind::breakeven;
  if (text == "sensitivity") return ScenarioKind::sensitivity;
  if (text == "montecarlo" || text == "monte_carlo" || text == "mc") {
    return ScenarioKind::montecarlo;
  }
  if (text == "frontier") return ScenarioKind::frontier;
  return std::nullopt;
}

std::string to_string(SweepVariable variable) {
  switch (variable) {
    case SweepVariable::app_count:
      return "app_count";
    case SweepVariable::lifetime_years:
      return "lifetime_years";
    case SweepVariable::volume:
      return "volume";
  }
  return "unknown";
}

std::optional<SweepVariable> parse_sweep_variable(std::string_view text) {
  if (text == "app_count" || text == "apps") return SweepVariable::app_count;
  if (text == "lifetime_years" || text == "lifetime") return SweepVariable::lifetime_years;
  if (text == "volume") return SweepVariable::volume;
  return std::nullopt;
}

std::string to_string(AxisScale scale) {
  switch (scale) {
    case AxisScale::list:
      return "list";
    case AxisScale::linear:
      return "linear";
    case AxisScale::log:
      return "log";
  }
  return "unknown";
}

std::vector<double> AxisSpec::values() const {
  switch (scale) {
    case AxisScale::list:
      if (explicit_values.empty()) {
        throw std::invalid_argument("AxisSpec: list axis needs at least one value");
      }
      return explicit_values;
    case AxisScale::linear:
      return linspace(from, to, count);
    case AxisScale::log:
      return logspace(from, to, count);
  }
  throw std::logic_error("AxisSpec: unknown scale");
}

std::string AxisSpec::label() const {
  switch (variable) {
    case SweepVariable::app_count:
      return "N_app";
    case SweepVariable::lifetime_years:
      return "T_i [years]";
    case SweepVariable::volume:
      return "N_vol [units]";
  }
  return "x";
}

AxisSpec AxisSpec::list(SweepVariable variable, std::vector<double> values) {
  AxisSpec axis;
  axis.variable = variable;
  axis.scale = AxisScale::list;
  axis.explicit_values = std::move(values);
  return axis;
}

AxisSpec AxisSpec::linear(SweepVariable variable, double from, double to, int count) {
  AxisSpec axis;
  axis.variable = variable;
  axis.scale = AxisScale::linear;
  axis.from = from;
  axis.to = to;
  axis.count = count;
  return axis;
}

AxisSpec AxisSpec::log(SweepVariable variable, double from, double to, int count) {
  AxisSpec axis;
  axis.variable = variable;
  axis.scale = AxisScale::log;
  axis.from = from;
  axis.to = to;
  axis.count = count;
  return axis;
}

std::vector<core::ParamDistribution> default_distributions() {
  std::vector<core::ParamDistribution> distributions;
  for (const ParameterRange& range : table1_ranges()) {
    distributions.push_back(
        core::ParamDistribution::uniform(range.name, range.low, range.high));
  }
  return distributions;
}

workload::Schedule ScheduleSpec::materialise(device::Domain domain) const {
  if (explicit_schedule) {
    return *explicit_schedule;
  }
  return core::paper_schedule(domain, app_count, lifetime_years * units::unit::years,
                              volume);
}

ScenarioSpec ScenarioSpec::make(ScenarioKind kind, device::Domain domain) {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.domain = domain;
  spec.suite = core::paper_suite();
  // Seed the schedule from the calibrated paper defaults (single source of
  // truth: a SweepDefaults recalibration must reach the engine path too).
  const core::SweepDefaults defaults = core::paper_sweep_defaults();
  spec.schedule.app_count = defaults.app_count;
  spec.schedule.lifetime_years = defaults.app_lifetime.in(units::unit::years);
  spec.schedule.volume = defaults.app_volume;
  spec.sensitivity.ranges = table1_ranges();
  spec.montecarlo.distributions = default_distributions();
  // Frontier default: the paper's two headline deployment axes at a
  // resolution that keeps `greenfpga frontier` on a minimal spec fast.
  spec.frontier.axes = {
      dse::FrontierAxisSpec::linear(dse::FrontierVariable::app_count, 1.0, 10.0, 10),
      dse::FrontierAxisSpec::log(dse::FrontierVariable::volume, 1e4, 1e7, 10),
  };
  return spec;
}

void ScenarioSpec::validate() const {
  const std::size_t expected_axes = kind == ScenarioKind::sweep  ? 1
                                    : kind == ScenarioKind::grid ? 2
                                                                 : 0;
  if (axes.size() != expected_axes) {
    throw std::invalid_argument("ScenarioSpec '" + name + "': kind " + to_string(kind) +
                                " needs exactly " + std::to_string(expected_axes) +
                                " axes, got " + std::to_string(axes.size()));
  }
  if (!axes.empty() && schedule.explicit_schedule) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': axes cannot override an explicit schedule");
  }
  if (schedule.explicit_schedule &&
      (kind == ScenarioKind::timeline || kind == ScenarioKind::breakeven)) {
    // These kinds are parameterised by the homogeneous fields only (the
    // timeline replays one repeating application; the solver's context is
    // a fixed point); silently dropping an application list would be a
    // trap.
    throw std::invalid_argument("ScenarioSpec '" + name + "': kind " + to_string(kind) +
                                " uses the homogeneous schedule fields, not an explicit "
                                "application list");
  }
  for (const AxisSpec& axis : axes) {
    if (axis.scale == AxisScale::list) {
      if (axis.explicit_values.empty()) {
        throw std::invalid_argument("ScenarioSpec '" + name + "': axis " +
                                    to_string(axis.variable) + " has no values");
      }
    } else if (axis.count < 2) {
      throw std::invalid_argument("ScenarioSpec '" + name + "': axis " +
                                  to_string(axis.variable) +
                                  " needs count >= 2 samples");
    } else if (axis.scale == AxisScale::log && (axis.from <= 0.0 || axis.to <= 0.0)) {
      throw std::invalid_argument("ScenarioSpec '" + name + "': log axis " +
                                  to_string(axis.variable) + " needs positive bounds");
    }
  }
  if (!schedule.explicit_schedule) {
    if (schedule.app_count < 1) {
      throw std::invalid_argument("ScenarioSpec '" + name + "': app_count must be >= 1");
    }
    if (schedule.lifetime_years <= 0.0 || schedule.volume <= 0.0) {
      throw std::invalid_argument("ScenarioSpec '" + name +
                                  "': lifetime and volume must be positive");
    }
  }
  for (const PlatformRef& platform : platforms) {
    if (platform.name.empty()) {
      throw std::invalid_argument("ScenarioSpec '" + name +
                                  "': platform names must be non-empty");
    }
  }
  if (kind == ScenarioKind::sensitivity && sensitivity.run_monte_carlo &&
      sensitivity.samples < 1) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': sensitivity needs at least one Monte-Carlo sample");
  }
  if (kind == ScenarioKind::timeline &&
      (timeline.horizon_years <= 0.0 || timeline.step_years <= 0.0)) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': timeline horizon and step must be positive");
  }
  if (kind == ScenarioKind::frontier) {
    if (schedule.explicit_schedule) {
      throw std::invalid_argument("ScenarioSpec '" + name +
                                  "': kind frontier uses the homogeneous schedule "
                                  "fields, not an explicit application list");
    }
    try {
      frontier.validate();
    } catch (const std::invalid_argument& error) {
      throw std::invalid_argument("ScenarioSpec '" + name + "': " + error.what());
    }
  }
  // The frontier confidence pass samples the montecarlo distributions, so
  // it needs them validated exactly like the montecarlo kind.
  const bool needs_distributions =
      kind == ScenarioKind::montecarlo ||
      (kind == ScenarioKind::frontier && frontier.confidence_samples > 0);
  if (kind == ScenarioKind::montecarlo) {
    if (montecarlo.samples < 1) {
      throw std::invalid_argument("ScenarioSpec '" + name +
                                  "': montecarlo needs at least one sample");
    }
    double previous = -1.0;
    for (const double p : montecarlo.percentiles) {
      if (p < 0.0 || p > 100.0 || p <= previous) {
        throw std::invalid_argument(
            "ScenarioSpec '" + name +
            "': montecarlo percentiles must be strictly increasing in [0, 100]");
      }
      previous = p;
    }
  }
  if (needs_distributions) {
    const std::vector<ParameterRange> known = table1_ranges();
    std::vector<std::string_view> seen;
    for (const core::ParamDistribution& distribution : montecarlo.distributions) {
      distribution.validate();  // bounds/stddev/mode checks, names the parameter
      const bool found =
          std::any_of(known.begin(), known.end(), [&](const ParameterRange& range) {
            return range.name == distribution.parameter;
          });
      if (!found) {
        throw std::invalid_argument("ScenarioSpec '" + name +
                                    "': unknown distribution parameter \"" +
                                    distribution.parameter + "\" (see table1_ranges)");
      }
      // Duplicates would apply last-writer-wins per sample, silently
      // dropping the earlier entry's uncertainty.
      if (std::find(seen.begin(), seen.end(), distribution.parameter) != seen.end()) {
        throw std::invalid_argument("ScenarioSpec '" + name +
                                    "': duplicate distribution for parameter \"" +
                                    distribution.parameter + "\"");
      }
      seen.push_back(distribution.parameter);
    }
  }
}

// -- JSON -----------------------------------------------------------------------

namespace {

/// Named-field numeric reads: a type-mismatched value raises io::JsonError
/// without saying *which* field was bad, so wrap the access and rethrow as
/// ConfigError naming the enclosing context and key (surfaced verbatim by
/// `greenfpga run` together with the spec path).
double number_field(const Json& json, const std::string& context, std::string_view key) {
  try {
    return json.at(key).as_number();
  } catch (const io::JsonError& error) {
    throw core::ConfigError(context + "." + std::string(key) + ": " + error.what());
  }
}

double number_field_or(const Json& json, const std::string& context, std::string_view key,
                       double fallback) {
  return json.contains(key) ? number_field(json, context, key) : fallback;
}

/// int_field_or with the same context-prefixed errors as number_field, so
/// integer fields (samples, seed, count) report their section too.
std::int64_t int_field_ctx(const Json& json, const std::string& context,
                           std::string_view key, std::int64_t fallback, std::int64_t lo,
                           std::int64_t hi) {
  try {
    return core::int_field_or(json, key, fallback, lo, hi);
  } catch (const core::ConfigError& error) {
    throw core::ConfigError(context + "." + std::string(key) + ": " + error.what());
  }
}

Json axis_to_json(const AxisSpec& axis) {
  Json out = Json::object();
  out["variable"] = to_string(axis.variable);
  out["scale"] = to_string(axis.scale);
  if (axis.scale == AxisScale::list) {
    Json values = Json::array();
    for (const double v : axis.explicit_values) {
      values.push_back(v);
    }
    out["values"] = std::move(values);
  } else {
    out["from"] = axis.from;
    out["to"] = axis.to;
    out["count"] = axis.count;
  }
  return out;
}

AxisSpec axis_from_json(const Json& json) {
  check_keys(json, "axis", {"variable", "scale", "from", "to", "count", "values"});
  AxisSpec axis;
  const std::string variable = json.string_or("variable", "app_count");
  const auto parsed_variable = parse_sweep_variable(variable);
  if (!parsed_variable) {
    throw core::ConfigError("unknown axis variable \"" + variable + "\"");
  }
  axis.variable = *parsed_variable;
  const std::string scale = json.string_or("scale", json.contains("values") ? "list" : "linear");
  if (scale == "list") {
    axis.scale = AxisScale::list;
    if (!json.contains("values")) {
      throw core::ConfigError("list axis needs a \"values\" array");
    }
    for (const Json& v : json.at("values").as_array()) {
      try {
        axis.explicit_values.push_back(v.as_number());
      } catch (const io::JsonError& error) {
        throw core::ConfigError("axis.values: " + std::string(error.what()));
      }
    }
  } else if (scale == "linear" || scale == "log") {
    axis.scale = scale == "linear" ? AxisScale::linear : AxisScale::log;
    if (!json.contains("from") || !json.contains("to") || !json.contains("count")) {
      throw core::ConfigError(scale + " axis needs \"from\", \"to\" and \"count\"");
    }
    axis.from = number_field(json, "axis", "from");
    axis.to = number_field(json, "axis", "to");
    axis.count = static_cast<int>(int_field_ctx(json, "axis", "count", 0, 2, 1'000'000));
  } else {
    throw core::ConfigError("unknown axis scale \"" + scale + "\"");
  }
  return axis;
}

Json platform_to_json(const PlatformRef& platform) {
  if (!platform.chip) {
    return Json(platform.name);
  }
  Json out = Json::object();
  out["name"] = platform.name;
  out["chip"] = core::to_json(*platform.chip);
  return out;
}

PlatformRef platform_from_json(const Json& json) {
  PlatformRef platform;
  if (json.is_string()) {
    platform.name = json.as_string();
    return platform;
  }
  check_keys(json, "platform", {"name", "chip"});
  platform.name = json.string_or("name", "");
  if (platform.name.empty()) {
    throw core::ConfigError("platform entries need a \"name\"");
  }
  if (json.contains("chip")) {
    platform.chip = core::chip_from_json(json.at("chip"));
  }
  return platform;
}

Json schedule_to_json(const ScheduleSpec& schedule) {
  Json out = Json::object();
  out["app_count"] = schedule.app_count;
  out["lifetime_years"] = schedule.lifetime_years;
  out["volume"] = schedule.volume;
  if (schedule.explicit_schedule) {
    out["applications"] = core::to_json(*schedule.explicit_schedule);
  }
  return out;
}

ScheduleSpec schedule_spec_from_json(const Json& json, ScheduleSpec schedule) {
  check_keys(json, "schedule",
             {"app_count", "lifetime_years", "volume", "applications"});
  schedule.app_count =
      static_cast<int>(int_field_ctx(json, "schedule", "app_count",
                                     schedule.app_count, 1, 1'000'000));
  schedule.lifetime_years =
      number_field_or(json, "schedule", "lifetime_years", schedule.lifetime_years);
  schedule.volume = number_field_or(json, "schedule", "volume", schedule.volume);
  if (json.contains("applications")) {
    schedule.explicit_schedule = core::schedule_from_json(json.at("applications"));
  }
  return schedule;
}

Json sensitivity_to_json(const SensitivitySpec& sensitivity) {
  Json out = Json::object();
  out["run_tornado"] = sensitivity.run_tornado;
  out["run_monte_carlo"] = sensitivity.run_monte_carlo;
  out["samples"] = sensitivity.samples;
  out["seed"] = static_cast<std::int64_t>(sensitivity.seed);
  Json ranges = Json::array();
  for (const ParameterRange& range : sensitivity.ranges) {
    ranges.push_back(range.name);
  }
  out["ranges"] = std::move(ranges);
  return out;
}

SensitivitySpec sensitivity_from_json(const Json& json, SensitivitySpec sensitivity) {
  check_keys(json, "sensitivity",
             {"run_tornado", "run_monte_carlo", "samples", "seed", "ranges"});
  sensitivity.run_tornado = json.bool_or("run_tornado", sensitivity.run_tornado);
  sensitivity.run_monte_carlo =
      json.bool_or("run_monte_carlo", sensitivity.run_monte_carlo);
  sensitivity.samples = static_cast<int>(
      int_field_ctx(json, "sensitivity", "samples", sensitivity.samples, 1,
                    100'000'000));
  sensitivity.seed = static_cast<unsigned>(
      int_field_ctx(json, "sensitivity", "seed", sensitivity.seed, 0,
                    4294967295LL));
  if (json.contains("ranges")) {
    sensitivity.ranges.clear();
    const std::vector<ParameterRange> known = table1_ranges();
    for (const Json& entry : json.at("ranges").as_array()) {
      const std::string& range_name = entry.as_string();
      bool found = false;
      for (const ParameterRange& range : known) {
        if (range.name == range_name) {
          sensitivity.ranges.push_back(range);
          found = true;
          break;
        }
      }
      if (!found) {
        throw core::ConfigError("unknown sensitivity range \"" + range_name +
                                "\" (see table1_ranges)");
      }
    }
  }
  return sensitivity;
}

/// Canonical form: only the fields the kind actually uses, so authors see
/// no spurious knobs and the round-trip stays byte-identical.
Json distribution_to_json(const core::ParamDistribution& distribution) {
  Json out = Json::object();
  out["parameter"] = distribution.parameter;
  out["kind"] = core::to_string(distribution.kind);
  out["low"] = distribution.low;
  out["high"] = distribution.high;
  if (distribution.kind == core::DistributionKind::normal) {
    out["mean"] = distribution.mean;
    out["stddev"] = distribution.stddev;
  } else if (distribution.kind == core::DistributionKind::triangular) {
    out["mode"] = distribution.mode;
  }
  return out;
}

core::ParamDistribution distribution_from_json(const Json& json) {
  check_keys(json, "distribution",
             {"parameter", "kind", "low", "high", "mean", "stddev", "mode"});
  core::ParamDistribution distribution;
  distribution.parameter = json.string_or("parameter", "");
  if (distribution.parameter.empty()) {
    throw core::ConfigError("distribution entries need a \"parameter\" name");
  }
  // The named Table 1 range supplies the default support (and validates
  // the name): {"parameter": "E_des [GWh]"} alone is a complete entry.
  const std::vector<ParameterRange> known = table1_ranges();
  const auto range = std::find_if(known.begin(), known.end(), [&](const ParameterRange& r) {
    return r.name == distribution.parameter;
  });
  if (range == known.end()) {
    throw core::ConfigError("unknown distribution parameter \"" +
                            distribution.parameter + "\" (see table1_ranges)");
  }
  const std::string kind = json.string_or("kind", "uniform");
  const auto parsed_kind = core::parse_distribution_kind(kind);
  if (!parsed_kind) {
    throw core::ConfigError("distribution \"" + distribution.parameter +
                            "\": unknown kind \"" + kind +
                            "\" (uniform, normal, triangular)");
  }
  distribution.kind = *parsed_kind;
  const std::string context = "distribution \"" + distribution.parameter + "\"";
  // Kind-irrelevant fields are rejected, not ignored: a normal entry with
  // "kind" forgotten would otherwise silently sample uniform over the
  // full range and drop the author's mean/stddev.
  for (const std::string_view key : {"mean", "stddev"}) {
    if (distribution.kind != core::DistributionKind::normal && json.contains(key)) {
      throw core::ConfigError(context + ": \"" + std::string(key) +
                              "\" needs \"kind\": \"normal\"");
    }
  }
  if (distribution.kind != core::DistributionKind::triangular && json.contains("mode")) {
    throw core::ConfigError(context + ": \"mode\" needs \"kind\": \"triangular\"");
  }
  distribution.low = number_field_or(json, context, "low", range->low);
  distribution.high = number_field_or(json, context, "high", range->high);
  if (distribution.kind == core::DistributionKind::normal) {
    distribution.mean = number_field_or(json, context, "mean",
                                        0.5 * (distribution.low + distribution.high));
    distribution.stddev = number_field_or(json, context, "stddev",
                                          (distribution.high - distribution.low) / 4.0);
  } else if (distribution.kind == core::DistributionKind::triangular) {
    distribution.mode = number_field_or(json, context, "mode",
                                        0.5 * (distribution.low + distribution.high));
  }
  return distribution;
}

Json montecarlo_to_json(const MonteCarloUqSpec& montecarlo) {
  Json out = Json::object();
  out["samples"] = montecarlo.samples;
  out["seed"] = static_cast<std::int64_t>(montecarlo.seed);
  Json distributions = Json::array();
  for (const core::ParamDistribution& distribution : montecarlo.distributions) {
    distributions.push_back(distribution_to_json(distribution));
  }
  out["distributions"] = std::move(distributions);
  Json percentiles = Json::array();
  for (const double p : montecarlo.percentiles) {
    percentiles.push_back(p);
  }
  out["percentiles"] = std::move(percentiles);
  return out;
}

MonteCarloUqSpec montecarlo_from_json(const Json& json, MonteCarloUqSpec montecarlo) {
  check_keys(json, "montecarlo", {"samples", "seed", "distributions", "percentiles"});
  // Range-guarded integer reads (int_field_or rejects non-integral values
  // and out-of-range input instead of casting, which would be UB).
  montecarlo.samples = static_cast<int>(
      int_field_ctx(json, "montecarlo", "samples", montecarlo.samples, 1,
                    10'000'000));
  montecarlo.seed = static_cast<unsigned>(
      int_field_ctx(json, "montecarlo", "seed", montecarlo.seed, 0, 4294967295LL));
  if (json.contains("distributions")) {
    montecarlo.distributions.clear();
    for (const Json& entry : json.at("distributions").as_array()) {
      montecarlo.distributions.push_back(distribution_from_json(entry));
    }
  }
  if (json.contains("percentiles")) {
    montecarlo.percentiles.clear();
    for (const Json& entry : json.at("percentiles").as_array()) {
      try {
        montecarlo.percentiles.push_back(entry.as_number());
      } catch (const io::JsonError& error) {
        throw core::ConfigError("montecarlo.percentiles: " + std::string(error.what()));
      }
    }
  }
  return montecarlo;
}

Json dse_to_json(const DseSpec& dse) {
  Json out = Json::object();
  if (dse.chip) {
    out["chip"] = core::to_json(*dse.chip);
  }
  Json nodes = Json::array();
  for (const tech::ProcessNode node : dse.nodes) {
    nodes.push_back(tech::to_string(node));
  }
  out["nodes"] = std::move(nodes);
  return out;
}

DseSpec dse_from_json(const Json& json) {
  check_keys(json, "dse", {"chip", "nodes"});
  DseSpec dse;
  if (json.contains("chip")) {
    dse.chip = core::chip_from_json(json.at("chip"));
  }
  if (json.contains("nodes")) {
    for (const Json& entry : json.at("nodes").as_array()) {
      const auto node = tech::parse_node(entry.as_string());
      if (!node) {
        throw core::ConfigError("unknown process node \"" + entry.as_string() + "\"");
      }
      dse.nodes.push_back(*node);
    }
  }
  return dse;
}

}  // namespace

Json spec_to_json(const ScenarioSpec& spec) {
  Json out = Json::object();
  out["name"] = spec.name;
  out["kind"] = to_string(spec.kind);
  out["domain"] = domain_token(spec.domain);
  Json platforms = Json::array();
  for (const PlatformRef& platform : spec.platforms) {
    platforms.push_back(platform_to_json(platform));
  }
  out["platforms"] = std::move(platforms);
  out["suite"] = core::to_json(spec.suite);
  out["schedule"] = schedule_to_json(spec.schedule);
  Json axes = Json::array();
  for (const AxisSpec& axis : spec.axes) {
    axes.push_back(axis_to_json(axis));
  }
  out["axes"] = std::move(axes);
  if (spec.grid_profile) {
    Json profile = Json::object();
    profile["profile"] = spec.grid_profile->profile;
    profile["policy"] = spec.grid_profile->policy;
    out["grid_profile"] = std::move(profile);
  }
  Json timeline = Json::object();
  timeline["horizon_years"] = spec.timeline.horizon_years;
  timeline["step_years"] = spec.timeline.step_years;
  out["timeline"] = std::move(timeline);
  out["dse"] = dse_to_json(spec.dse);
  Json breakeven = Json::object();
  breakeven["solve_app_count"] = spec.breakeven.solve_app_count;
  breakeven["solve_lifetime"] = spec.breakeven.solve_lifetime;
  breakeven["solve_volume"] = spec.breakeven.solve_volume;
  out["breakeven"] = std::move(breakeven);
  out["sensitivity"] = sensitivity_to_json(spec.sensitivity);
  out["montecarlo"] = montecarlo_to_json(spec.montecarlo);
  out["frontier"] = dse::frontier_spec_to_json(spec.frontier);
  Json outputs = Json::object();
  outputs["per_application"] = spec.outputs.per_application;
  out["outputs"] = std::move(outputs);
  return out;
}

ScenarioSpec spec_from_json(const Json& json) {
  check_keys(json, "scenario spec",
             {"name", "kind", "domain", "platforms", "suite", "schedule", "axes",
              "grid_profile", "timeline", "dse", "breakeven", "sensitivity",
              "montecarlo", "frontier", "outputs"});
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare);
  spec.name = json.string_or("name", spec.name);
  const std::string kind = json.string_or("kind", "compare");
  const auto parsed_kind = parse_scenario_kind(kind);
  if (!parsed_kind) {
    throw core::ConfigError("unknown scenario kind \"" + kind + "\"");
  }
  spec.kind = *parsed_kind;
  spec.domain = domain_from_token(json.string_or("domain", "dnn"));
  if (json.contains("platforms")) {
    for (const Json& entry : json.at("platforms").as_array()) {
      spec.platforms.push_back(platform_from_json(entry));
    }
  }
  if (json.contains("suite")) {
    spec.suite = core::suite_from_json(json.at("suite"), spec.suite);
  }
  if (json.contains("schedule")) {
    // Partial schedule objects keep the make()-seeded paper defaults for
    // whatever they omit ("omitted fields keep their paper defaults").
    spec.schedule = schedule_spec_from_json(json.at("schedule"), spec.schedule);
  }
  if (json.contains("axes")) {
    for (const Json& entry : json.at("axes").as_array()) {
      spec.axes.push_back(axis_from_json(entry));
    }
  }
  if (json.contains("grid_profile")) {
    check_keys(json.at("grid_profile"), "grid_profile", {"profile", "policy"});
    GridProfileSpec profile;
    profile.profile = json.at("grid_profile").string_or("profile", profile.profile);
    profile.policy = json.at("grid_profile").string_or("policy", profile.policy);
    spec.grid_profile = std::move(profile);
  }
  if (json.contains("timeline")) {
    check_keys(json.at("timeline"), "timeline", {"horizon_years", "step_years"});
    spec.timeline.horizon_years =
        json.at("timeline").number_or("horizon_years", spec.timeline.horizon_years);
    spec.timeline.step_years =
        json.at("timeline").number_or("step_years", spec.timeline.step_years);
  }
  if (json.contains("dse")) {
    spec.dse = dse_from_json(json.at("dse"));
  }
  if (json.contains("breakeven")) {
    check_keys(json.at("breakeven"), "breakeven",
               {"solve_app_count", "solve_lifetime", "solve_volume"});
    spec.breakeven.solve_app_count =
        json.at("breakeven").bool_or("solve_app_count", spec.breakeven.solve_app_count);
    spec.breakeven.solve_lifetime =
        json.at("breakeven").bool_or("solve_lifetime", spec.breakeven.solve_lifetime);
    spec.breakeven.solve_volume =
        json.at("breakeven").bool_or("solve_volume", spec.breakeven.solve_volume);
  }
  if (json.contains("sensitivity")) {
    spec.sensitivity = sensitivity_from_json(json.at("sensitivity"), spec.sensitivity);
  }
  if (json.contains("montecarlo")) {
    spec.montecarlo = montecarlo_from_json(json.at("montecarlo"), spec.montecarlo);
  }
  if (json.contains("frontier")) {
    spec.frontier = dse::frontier_spec_from_json(json.at("frontier"), "frontier",
                                                 std::move(spec.frontier));
  }
  if (json.contains("outputs")) {
    check_keys(json.at("outputs"), "outputs", {"per_application"});
    spec.outputs.per_application =
        json.at("outputs").bool_or("per_application", spec.outputs.per_application);
  }
  spec.validate();
  return spec;
}

ScenarioSpec load_spec(const std::string& path) {
  // Every parse/validation failure names the offending file: a CLI user
  // piping several specs must be able to tell which one was bad.
  try {
    return load_spec_json(io::parse_json_file(path), path);
  } catch (const io::JsonError& error) {
    // parse_json_file already leads with the path; drop it rather than
    // name the file twice in one message.
    std::string message = error.what();
    const std::string prefix = path + ": ";
    if (message.rfind(prefix, 0) == 0) {
      message.erase(0, prefix.size());
    }
    throw core::ConfigError("spec file '" + path + "': " + message);
  }
}

ScenarioSpec load_spec_json(const Json& json, const std::string& source) {
  try {
    return spec_from_json(json);
  } catch (const core::ConfigError& error) {
    throw core::ConfigError("spec file '" + source + "': " + error.what());
  } catch (const io::JsonError& error) {
    throw core::ConfigError("spec file '" + source + "': " + error.what());
  } catch (const std::invalid_argument& error) {
    throw core::ConfigError("spec file '" + source + "': " + error.what());
  }
}

}  // namespace greenfpga::scenario
