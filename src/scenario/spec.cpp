/// \file spec.cpp
/// ScenarioSpec helpers, validation and canonical JSON round-trip.
///
/// Kind-specific behaviour (parameter sections, kind validation, seed
/// defaults) lives in the per-kind modules under scenario/kinds/; this
/// file owns only the common spec surface and derives the rest by
/// iterating the registry.

#include "scenario/spec.hpp"

#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "scenario/kind_registry.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/sweep.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

using io::Json;
using kinds::int_field_ctx;
using kinds::number_field;
using kinds::number_field_or;

/// Unknown-key guard, shared with the core config readers.
void check_keys(const Json& json, const std::string& context,
                std::initializer_list<std::string_view> allowed) {
  core::check_known_keys(json, context, allowed);
}

/// Top-level spec keys owned by the common layer; every other key must be
/// claimed by some module's `spec_keys`.
constexpr std::string_view kCommonSpecKeys[] = {
    "name", "kind", "domain", "platforms", "suite",
    "schedule", "axes", "grid_profile", "outputs"};

/// check_known_keys against the registry-derived allowed set (the list is
/// runtime-built, so replicate the same loop and error text).
void check_spec_keys(const Json& json) {
  std::vector<std::string_view> allowed(std::begin(kCommonSpecKeys),
                                        std::end(kCommonSpecKeys));
  for (const KindModule* module : all_kind_modules()) {
    allowed.insert(allowed.end(), module->spec_keys.begin(), module->spec_keys.end());
  }
  for (const auto& [key, value] : json.as_object()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw core::ConfigError("unknown key \"" + key + "\" in scenario spec");
    }
  }
}

std::string domain_token(device::Domain domain) {
  switch (domain) {
    case device::Domain::dnn:
      return "dnn";
    case device::Domain::imgproc:
      return "imgproc";
    case device::Domain::crypto:
      return "crypto";
  }
  return "dnn";
}

device::Domain domain_from_token(const std::string& text) {
  if (text == "dnn" || text == "DNN") return device::Domain::dnn;
  if (text == "imgproc" || text == "ImgProc") return device::Domain::imgproc;
  if (text == "crypto" || text == "Crypto") return device::Domain::crypto;
  throw core::ConfigError("unknown domain \"" + text + "\"");
}

}  // namespace

std::string to_string(ScenarioKind kind) {
  return std::string(kind_module(kind).name);
}

std::optional<ScenarioKind> parse_scenario_kind(std::string_view text) {
  const KindModule* module = find_kind_module(text);
  if (module == nullptr) {
    return std::nullopt;
  }
  return module->kind;
}

std::string to_string(SweepVariable variable) {
  switch (variable) {
    case SweepVariable::app_count:
      return "app_count";
    case SweepVariable::lifetime_years:
      return "lifetime_years";
    case SweepVariable::volume:
      return "volume";
  }
  return "unknown";
}

std::optional<SweepVariable> parse_sweep_variable(std::string_view text) {
  if (text == "app_count" || text == "apps") return SweepVariable::app_count;
  if (text == "lifetime_years" || text == "lifetime") return SweepVariable::lifetime_years;
  if (text == "volume") return SweepVariable::volume;
  return std::nullopt;
}

std::string to_string(AxisScale scale) {
  switch (scale) {
    case AxisScale::list:
      return "list";
    case AxisScale::linear:
      return "linear";
    case AxisScale::log:
      return "log";
  }
  return "unknown";
}

std::vector<double> AxisSpec::values() const {
  switch (scale) {
    case AxisScale::list:
      if (explicit_values.empty()) {
        throw std::invalid_argument("AxisSpec: list axis needs at least one value");
      }
      return explicit_values;
    case AxisScale::linear:
      return linspace(from, to, count);
    case AxisScale::log:
      return logspace(from, to, count);
  }
  throw std::logic_error("AxisSpec: unknown scale");
}

std::string AxisSpec::label() const {
  switch (variable) {
    case SweepVariable::app_count:
      return "N_app";
    case SweepVariable::lifetime_years:
      return "T_i [years]";
    case SweepVariable::volume:
      return "N_vol [units]";
  }
  return "x";
}

AxisSpec AxisSpec::list(SweepVariable variable, std::vector<double> values) {
  AxisSpec axis;
  axis.variable = variable;
  axis.scale = AxisScale::list;
  axis.explicit_values = std::move(values);
  return axis;
}

AxisSpec AxisSpec::linear(SweepVariable variable, double from, double to, int count) {
  AxisSpec axis;
  axis.variable = variable;
  axis.scale = AxisScale::linear;
  axis.from = from;
  axis.to = to;
  axis.count = count;
  return axis;
}

AxisSpec AxisSpec::log(SweepVariable variable, double from, double to, int count) {
  AxisSpec axis;
  axis.variable = variable;
  axis.scale = AxisScale::log;
  axis.from = from;
  axis.to = to;
  axis.count = count;
  return axis;
}

std::vector<core::ParamDistribution> default_distributions() {
  std::vector<core::ParamDistribution> distributions;
  for (const ParameterRange& range : table1_ranges()) {
    distributions.push_back(
        core::ParamDistribution::uniform(range.name, range.low, range.high));
  }
  return distributions;
}

workload::Schedule ScheduleSpec::materialise(device::Domain domain) const {
  if (explicit_schedule) {
    return *explicit_schedule;
  }
  return core::paper_schedule(domain, app_count, lifetime_years * units::unit::years,
                              volume);
}

ScenarioSpec ScenarioSpec::make(ScenarioKind kind, device::Domain domain) {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.domain = domain;
  spec.suite = core::paper_suite();
  // Seed the schedule from the calibrated paper defaults (single source of
  // truth: a SweepDefaults recalibration must reach the engine path too).
  const core::SweepDefaults defaults = core::paper_sweep_defaults();
  spec.schedule.app_count = defaults.app_count;
  spec.schedule.lifetime_years = defaults.app_lifetime.in(units::unit::years);
  spec.schedule.volume = defaults.app_volume;
  for (const KindModule* module : all_kind_modules()) {
    if (module->seed_defaults != nullptr) {
      module->seed_defaults(spec);
    }
  }
  return spec;
}

void ScenarioSpec::validate() const {
  const KindModule& module = kind_module(kind);
  if (axes.size() != module.expected_axes) {
    throw std::invalid_argument("ScenarioSpec '" + name + "': kind " + to_string(kind) +
                                " needs exactly " + std::to_string(module.expected_axes) +
                                " axes, got " + std::to_string(axes.size()));
  }
  if (!axes.empty() && schedule.explicit_schedule) {
    throw std::invalid_argument("ScenarioSpec '" + name +
                                "': axes cannot override an explicit schedule");
  }
  for (const AxisSpec& axis : axes) {
    if (axis.scale == AxisScale::list) {
      if (axis.explicit_values.empty()) {
        throw std::invalid_argument("ScenarioSpec '" + name + "': axis " +
                                    to_string(axis.variable) + " has no values");
      }
    } else if (axis.count < 2) {
      throw std::invalid_argument("ScenarioSpec '" + name + "': axis " +
                                  to_string(axis.variable) +
                                  " needs count >= 2 samples");
    } else if (axis.scale == AxisScale::log && (axis.from <= 0.0 || axis.to <= 0.0)) {
      throw std::invalid_argument("ScenarioSpec '" + name + "': log axis " +
                                  to_string(axis.variable) + " needs positive bounds");
    }
  }
  if (!schedule.explicit_schedule) {
    if (schedule.app_count < 1) {
      throw std::invalid_argument("ScenarioSpec '" + name + "': app_count must be >= 1");
    }
    if (schedule.lifetime_years <= 0.0 || schedule.volume <= 0.0) {
      throw std::invalid_argument("ScenarioSpec '" + name +
                                  "': lifetime and volume must be positive");
    }
  }
  for (const PlatformRef& platform : platforms) {
    if (platform.name.empty()) {
      throw std::invalid_argument("ScenarioSpec '" + name +
                                  "': platform names must be non-empty");
    }
  }
  if (module.validate != nullptr) {
    module.validate(*this);
  }
}

// -- JSON -----------------------------------------------------------------------

namespace {

Json axis_to_json(const AxisSpec& axis) {
  Json out = Json::object();
  out["variable"] = to_string(axis.variable);
  out["scale"] = to_string(axis.scale);
  if (axis.scale == AxisScale::list) {
    Json values = Json::array();
    for (const double v : axis.explicit_values) {
      values.push_back(v);
    }
    out["values"] = std::move(values);
  } else {
    out["from"] = axis.from;
    out["to"] = axis.to;
    out["count"] = axis.count;
  }
  return out;
}

AxisSpec axis_from_json(const Json& json) {
  check_keys(json, "axis", {"variable", "scale", "from", "to", "count", "values"});
  AxisSpec axis;
  const std::string variable = json.string_or("variable", "app_count");
  const auto parsed_variable = parse_sweep_variable(variable);
  if (!parsed_variable) {
    throw core::ConfigError("unknown axis variable \"" + variable + "\"");
  }
  axis.variable = *parsed_variable;
  const std::string scale = json.string_or("scale", json.contains("values") ? "list" : "linear");
  if (scale == "list") {
    axis.scale = AxisScale::list;
    if (!json.contains("values")) {
      throw core::ConfigError("list axis needs a \"values\" array");
    }
    for (const Json& v : json.at("values").as_array()) {
      try {
        axis.explicit_values.push_back(v.as_number());
      } catch (const io::JsonError& error) {
        throw core::ConfigError("axis.values: " + std::string(error.what()));
      }
    }
  } else if (scale == "linear" || scale == "log") {
    axis.scale = scale == "linear" ? AxisScale::linear : AxisScale::log;
    if (!json.contains("from") || !json.contains("to") || !json.contains("count")) {
      throw core::ConfigError(scale + " axis needs \"from\", \"to\" and \"count\"");
    }
    axis.from = number_field(json, "axis", "from");
    axis.to = number_field(json, "axis", "to");
    axis.count = static_cast<int>(int_field_ctx(json, "axis", "count", 0, 2, 1'000'000));
  } else {
    throw core::ConfigError("unknown axis scale \"" + scale + "\"");
  }
  return axis;
}

Json platform_to_json(const PlatformRef& platform) {
  if (!platform.chip) {
    return Json(platform.name);
  }
  Json out = Json::object();
  out["name"] = platform.name;
  out["chip"] = core::to_json(*platform.chip);
  return out;
}

PlatformRef platform_from_json(const Json& json) {
  PlatformRef platform;
  if (json.is_string()) {
    platform.name = json.as_string();
    return platform;
  }
  check_keys(json, "platform", {"name", "chip"});
  platform.name = json.string_or("name", "");
  if (platform.name.empty()) {
    throw core::ConfigError("platform entries need a \"name\"");
  }
  if (json.contains("chip")) {
    platform.chip = core::chip_from_json(json.at("chip"));
  }
  return platform;
}

Json schedule_to_json(const ScheduleSpec& schedule) {
  Json out = Json::object();
  out["app_count"] = schedule.app_count;
  out["lifetime_years"] = schedule.lifetime_years;
  out["volume"] = schedule.volume;
  if (schedule.explicit_schedule) {
    out["applications"] = core::to_json(*schedule.explicit_schedule);
  }
  return out;
}

ScheduleSpec schedule_spec_from_json(const Json& json, ScheduleSpec schedule) {
  check_keys(json, "schedule",
             {"app_count", "lifetime_years", "volume", "applications"});
  schedule.app_count =
      static_cast<int>(int_field_ctx(json, "schedule", "app_count",
                                     schedule.app_count, 1, 1'000'000));
  schedule.lifetime_years =
      number_field_or(json, "schedule", "lifetime_years", schedule.lifetime_years);
  schedule.volume = number_field_or(json, "schedule", "volume", schedule.volume);
  if (json.contains("applications")) {
    schedule.explicit_schedule = core::schedule_from_json(json.at("applications"));
  }
  return schedule;
}

}  // namespace

Json spec_to_json(const ScenarioSpec& spec) {
  Json out = Json::object();
  out["name"] = spec.name;
  out["kind"] = to_string(spec.kind);
  out["domain"] = domain_token(spec.domain);
  Json platforms = Json::array();
  for (const PlatformRef& platform : spec.platforms) {
    platforms.push_back(platform_to_json(platform));
  }
  out["platforms"] = std::move(platforms);
  out["suite"] = core::to_json(spec.suite);
  out["schedule"] = schedule_to_json(spec.schedule);
  Json axes = Json::array();
  for (const AxisSpec& axis : spec.axes) {
    axes.push_back(axis_to_json(axis));
  }
  out["axes"] = std::move(axes);
  if (spec.grid_profile) {
    Json profile = Json::object();
    profile["profile"] = spec.grid_profile->profile;
    profile["policy"] = spec.grid_profile->policy;
    out["grid_profile"] = std::move(profile);
  }
  // Every module emits its sections into the shared object (the canonical
  // dump sorts keys, so emission order never shows in the bytes).
  for (const KindModule* module : all_kind_modules()) {
    if (module->params_to_json != nullptr) {
      module->params_to_json(spec, out);
    }
  }
  Json outputs = Json::object();
  outputs["per_application"] = spec.outputs.per_application;
  out["outputs"] = std::move(outputs);
  return out;
}

ScenarioSpec spec_from_json(const Json& json) {
  check_spec_keys(json);
  ScenarioSpec spec = ScenarioSpec::make(ScenarioKind::compare);
  spec.name = json.string_or("name", spec.name);
  const std::string kind = json.string_or("kind", "compare");
  const KindModule* module = find_kind_module(kind);
  if (module == nullptr) {
    throw core::ConfigError("unknown scenario kind \"" + kind +
                            "\" (valid: " + kind_name_list() + ")");
  }
  spec.kind = module->kind;
  // Re-seed now that the kind is known: kind-conditional defaults (the
  // fleet section) depend on it.
  for (const KindModule* each : all_kind_modules()) {
    if (each->seed_defaults != nullptr) {
      each->seed_defaults(spec);
    }
  }
  spec.domain = domain_from_token(json.string_or("domain", "dnn"));
  if (json.contains("platforms")) {
    for (const Json& entry : json.at("platforms").as_array()) {
      spec.platforms.push_back(platform_from_json(entry));
    }
  }
  if (json.contains("suite")) {
    spec.suite = core::suite_from_json(json.at("suite"), spec.suite);
  }
  if (json.contains("schedule")) {
    // Partial schedule objects keep the make()-seeded paper defaults for
    // whatever they omit ("omitted fields keep their paper defaults").
    spec.schedule = schedule_spec_from_json(json.at("schedule"), spec.schedule);
  }
  if (json.contains("axes")) {
    for (const Json& entry : json.at("axes").as_array()) {
      spec.axes.push_back(axis_from_json(entry));
    }
  }
  if (json.contains("grid_profile")) {
    check_keys(json.at("grid_profile"), "grid_profile", {"profile", "policy"});
    GridProfileSpec profile;
    profile.profile = json.at("grid_profile").string_or("profile", profile.profile);
    profile.policy = json.at("grid_profile").string_or("policy", profile.policy);
    spec.grid_profile = std::move(profile);
  }
  for (const KindModule* each : all_kind_modules()) {
    if (each->parse_params != nullptr) {
      each->parse_params(json, spec);
    }
  }
  if (json.contains("outputs")) {
    check_keys(json.at("outputs"), "outputs", {"per_application"});
    spec.outputs.per_application =
        json.at("outputs").bool_or("per_application", spec.outputs.per_application);
  }
  spec.validate();
  return spec;
}

ScenarioSpec load_spec(const std::string& path) {
  // Every parse/validation failure names the offending file: a CLI user
  // piping several specs must be able to tell which one was bad.
  try {
    return load_spec_json(io::parse_json_file(path), path);
  } catch (const io::JsonError& error) {
    // parse_json_file already leads with the path; drop it rather than
    // name the file twice in one message.
    std::string message = error.what();
    const std::string prefix = path + ": ";
    if (message.rfind(prefix, 0) == 0) {
      message.erase(0, prefix.size());
    }
    throw core::ConfigError("spec file '" + path + "': " + message);
  }
}

ScenarioSpec load_spec_json(const Json& json, const std::string& source) {
  try {
    return spec_from_json(json);
  } catch (const core::ConfigError& error) {
    throw core::ConfigError("spec file '" + source + "': " + error.what());
  } catch (const io::JsonError& error) {
    throw core::ConfigError("spec file '" + source + "': " + error.what());
  } catch (const std::invalid_argument& error) {
    throw core::ConfigError("spec file '" + source + "': " + error.what());
  }
}

}  // namespace greenfpga::scenario
