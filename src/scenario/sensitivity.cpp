/// \file sensitivity.cpp
/// Tornado and Monte-Carlo analyses over the Table 1 ranges.

#include "scenario/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "scenario/engine.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

using namespace units::unit;

double ratio_for(const core::ModelSuite& suite, const device::DomainTestcase& testcase,
                 const workload::Schedule& schedule) {
  const core::LifecycleModel model(suite);
  return core::compare(model, testcase, schedule).ratio();
}

}  // namespace

std::vector<ParameterRange> table1_ranges() {
  std::vector<ParameterRange> ranges;
  // C_materials: rho in [0, 1].
  ranges.push_back({"rho (recycled materials)", 0.0, 1.0,
                    [](core::ModelSuite& s, double v) {
                      s.fab.recycled_material_fraction = v;
                    }});
  // C_EOL: delta in [0, 1].
  ranges.push_back({"delta (EOL recycled)", 0.0, 1.0, [](core::ModelSuite& s, double v) {
                      s.eol.recycled_fraction = v;
                    }});
  // C_recycle: 7.65 - 29.83 MTCO2E/ton.
  ranges.push_back({"C_recycle [MTCO2E/ton]", 7.65, 29.83,
                    [](core::ModelSuite& s, double v) {
                      s.eol.recycle_credit_factor = v * mtco2e_per_ton;
                    }});
  // C_dis: 0.03 - 2.08 MTCO2E/ton.
  ranges.push_back({"C_dis [MTCO2E/ton]", 0.03, 2.08,
                    [](core::ModelSuite& s, double v) {
                      s.eol.discard_factor = v * mtco2e_per_ton;
                    }});
  // T_app,FE: 1.5 - 2.5 months.
  ranges.push_back({"T_FE [months]", 1.5, 2.5, [](core::ModelSuite& s, double v) {
                      s.appdev.frontend_time = v * months;
                    }});
  // T_app,BE: 0.5 - 1.5 months.
  ranges.push_back({"T_BE [months]", 0.5, 1.5, [](core::ModelSuite& s, double v) {
                      s.appdev.backend_time = v * months;
                    }});
  // E_des: 2 - 7.3 GWh.
  ranges.push_back({"E_des [GWh]", 2.0, 7.3, [](core::ModelSuite& s, double v) {
                      s.design.annual_energy = v * gwh;
                    }});
  // C_src,des: 30 - 700 g CO2e/kWh.
  ranges.push_back({"C_src_des [g/kWh]", 30.0, 700.0, [](core::ModelSuite& s, double v) {
                      s.design.intensity = v * g_per_kwh;
                    }});
  // N_emp,des: 20K - 160K employees.
  ranges.push_back({"N_emp_company", 20e3, 160e3, [](core::ModelSuite& s, double v) {
                      s.design.company_employees = v;
                    }});
  // T_proj: 1 - 3 years.
  ranges.push_back({"T_proj [years]", 1.0, 3.0, [](core::ModelSuite& s, double v) {
                      s.design.project_duration = v * years;
                    }});
  return ranges;
}

double TornadoEntry::swing() const { return std::fabs(ratio_at_high - ratio_at_low); }

namespace {

/// Sensitivity-kind spec skeleton shared by the public shims.
ScenarioSpec sensitivity_spec(const core::ModelSuite& base,
                              const device::DomainTestcase& testcase,
                              const workload::Schedule& schedule,
                              const std::vector<ParameterRange>& ranges) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::sensitivity;
  spec.domain = testcase.domain;
  spec.suite = base;
  spec.platforms = {PlatformRef{.name = "asic", .chip = testcase.asic},
                    PlatformRef{.name = "fpga", .chip = testcase.fpga}};
  spec.schedule.explicit_schedule = schedule;
  spec.sensitivity.ranges = ranges;
  return spec;
}

}  // namespace

std::vector<TornadoEntry> tornado(const core::ModelSuite& base,
                                  const device::DomainTestcase& testcase,
                                  const workload::Schedule& schedule,
                                  const std::vector<ParameterRange>& ranges) {
  ScenarioSpec spec = sensitivity_spec(base, testcase, schedule, ranges);
  spec.sensitivity.run_tornado = true;
  spec.sensitivity.run_monte_carlo = false;
  return Engine().run(spec).tornado;
}

MonteCarloResult monte_carlo(const core::ModelSuite& base,
                             const device::DomainTestcase& testcase,
                             const workload::Schedule& schedule,
                             const std::vector<ParameterRange>& ranges, int samples,
                             unsigned seed) {
  ScenarioSpec spec = sensitivity_spec(base, testcase, schedule, ranges);
  spec.sensitivity.run_tornado = false;
  spec.sensitivity.run_monte_carlo = true;
  spec.sensitivity.samples = samples;
  spec.sensitivity.seed = seed;
  return *Engine().run(spec).monte_carlo;
}

namespace detail {

std::vector<TornadoEntry> tornado_analysis(const core::ModelSuite& base,
                                           const device::DomainTestcase& testcase,
                                           const workload::Schedule& schedule,
                                           const std::vector<ParameterRange>& ranges) {
  std::vector<TornadoEntry> entries;
  entries.reserve(ranges.size());
  for (const ParameterRange& range : ranges) {
    core::ModelSuite at_low = base;
    range.apply(at_low, range.low);
    core::ModelSuite at_high = base;
    range.apply(at_high, range.high);
    entries.push_back(TornadoEntry{
        .name = range.name,
        .ratio_at_low = ratio_for(at_low, testcase, schedule),
        .ratio_at_high = ratio_for(at_high, testcase, schedule),
    });
  }
  std::sort(entries.begin(), entries.end(),
            [](const TornadoEntry& a, const TornadoEntry& b) { return a.swing() > b.swing(); });
  return entries;
}

MonteCarloResult monte_carlo_analysis(const core::ModelSuite& base,
                                      const device::DomainTestcase& testcase,
                                      const workload::Schedule& schedule,
                                      const std::vector<ParameterRange>& ranges,
                                      int samples, unsigned seed) {
  if (samples < 1) {
    throw std::invalid_argument("monte_carlo: need at least one sample");
  }
  std::mt19937 rng(seed);
  std::vector<double> ratios;
  ratios.reserve(static_cast<std::size_t>(samples));

  for (int i = 0; i < samples; ++i) {
    core::ModelSuite suite = base;
    for (const ParameterRange& range : ranges) {
      std::uniform_real_distribution<double> dist(range.low, range.high);
      range.apply(suite, dist(rng));
    }
    ratios.push_back(ratio_for(suite, testcase, schedule));
  }

  MonteCarloResult result;
  result.samples = samples;
  int wins = 0;
  for (const double r : ratios) {
    if (r < 1.0) ++wins;
  }
  // One shared definition of mean/stddev/percentiles (summarise_samples,
  // also behind the montecarlo kind), so the two Monte-Carlo reports can
  // never drift apart.
  const UqStat stat = summarise_samples(std::move(ratios), {5.0, 50.0, 95.0});
  result.mean = stat.mean;
  result.stddev = stat.stddev;
  result.p05 = stat.percentile_values[0];
  result.p50 = stat.percentile_values[1];
  result.p95 = stat.percentile_values[2];
  result.fpga_win_fraction = static_cast<double>(wins) / static_cast<double>(samples);
  return result;
}

}  // namespace detail

}  // namespace greenfpga::scenario
