#ifndef GREENFPGA_SCENARIO_NODE_DSE_HPP
#define GREENFPGA_SCENARIO_NODE_DSE_HPP

/// \file node_dse.hpp
/// Carbon-aware process-node design-space exploration.
///
/// An extension in the spirit of the paper's §5 ("enabling
/// sustainability-minded design decisions") and the carbon-aware DSE line
/// of work it cites [16]: given a device and a deployment schedule, which
/// fabrication node minimises *lifecycle* carbon?
///
/// Advanced nodes cost more embodied carbon *per area* (EUV energy,
/// rising defect densities) but, in the ACT dataset, logic density grows
/// faster than carbon-per-area, so per-gate embodied carbon still falls
/// with scaling -- at iso-design the most advanced node wins on both
/// embodied and operational carbon.  What the exploration surfaces is the
/// *margin* (how much a mature-node fallback costs, and whether the duty
/// cycle makes that margin embodied- or operation-driven) and the
/// *feasibility frontier* (large designs fall off the reticle on trailing
/// nodes).  `retarget_to_node` scales a chip across nodes with documented
/// first-order rules (area by logic density, power by the CV^2f-style
/// per-node factor), and `NodeDse` ranks the candidates.

#include <span>
#include <vector>

#include "core/lifecycle_model.hpp"
#include "device/chip_spec.hpp"
#include "tech/node.hpp"
#include "workload/application.hpp"

namespace greenfpga::scenario {

/// First-order retarget of a chip onto another node: die area scales with
/// the inverse logic-density ratio, peak power with the per-node power
/// factor, capacity is preserved (same design), defectivity follows the
/// target node.  Throws std::invalid_argument if the retargeted die would
/// not be manufacturable (exceeds the reticle, ~858 mm^2).
[[nodiscard]] device::ChipSpec retarget_to_node(const device::ChipSpec& chip,
                                                tech::ProcessNode node);

/// Single-exposure reticle limit used as the manufacturability bound.
inline constexpr double kReticleLimitMm2 = 858.0;

/// One explored candidate.
struct NodeCandidate {
  device::ChipSpec chip;                 ///< the retargeted device
  core::CfpBreakdown lifecycle;          ///< platform total over the schedule
  double total_vs_best = 1.0;            ///< total / best candidate's total

  [[nodiscard]] units::CarbonMass total() const { return lifecycle.total(); }
};

/// Engine primitive: evaluate one (already retargeted) candidate device
/// against a schedule.  `total_vs_best` is left at 1.0; see
/// `rank_node_candidates`.
[[nodiscard]] NodeCandidate evaluate_node_candidate(const core::LifecycleModel& model,
                                                    const workload::Schedule& schedule,
                                                    const device::ChipSpec& retargeted);

/// Engine primitive: sort candidates by ascending lifecycle CFP and fill
/// `total_vs_best`.  Throws std::invalid_argument when `candidates` is
/// empty (no node can manufacture the design).
void rank_node_candidates(std::vector<NodeCandidate>& candidates);

/// Ranks fabrication nodes for one device + schedule by lifecycle CFP.
///
/// \deprecated Thin shim over `scenario::Engine`; new code should build a
/// node_dse-kind `ScenarioSpec` and call `Engine::run` (which also
/// evaluates the candidates in parallel).
class NodeDse {
 public:
  /// `model` supplies every sub-model; the schedule fixes the deployment.
  NodeDse(core::LifecycleModel model, workload::Schedule schedule);

  /// Evaluate the chip retargeted to each candidate node; unmanufacturable
  /// retargets (reticle violations) are skipped.  Returns candidates
  /// sorted by ascending lifecycle CFP; `total_vs_best` is 1.0 for the
  /// winner.  Throws std::invalid_argument if no candidate fits.
  [[nodiscard]] std::vector<NodeCandidate> explore(
      const device::ChipSpec& chip,
      std::span<const tech::ProcessNode> nodes = tech::all_nodes()) const;

  /// The winning node for this deployment.
  [[nodiscard]] NodeCandidate best(const device::ChipSpec& chip) const;

 private:
  core::LifecycleModel model_;
  workload::Schedule schedule_;
};

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_NODE_DSE_HPP
