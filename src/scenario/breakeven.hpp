#ifndef GREENFPGA_SCENARIO_BREAKEVEN_HPP
#define GREENFPGA_SCENARIO_BREAKEVEN_HPP

/// \file breakeven.hpp
/// Closed-form crossover (break-even) solver.
///
/// For homogeneous schedules under one-time app-dev accounting, both
/// platform totals are *affine* in each scenario variable separately:
///
///   * in `N_app`  (the ASIC line passes through the origin),
///   * in `T_i`    (operation accrues linearly),
///   * in `N_vol`  (silicon, operation and configuration scale per unit).
///
/// So every crossover the sweep engine finds by scanning has an exact
/// solution from two model probes per platform (slope + intercept).  The
/// solver works by probing the production `LifecycleModel` rather than
/// re-deriving coefficients, so it is exact for the implemented model and
/// doubles as an independent check of the sweep machinery
/// (tests/breakeven_test.cpp pins solver vs sweep to 1e-6).
///
/// Fig. 9-style horizons that replace the FPGA fleet break the affinity
/// (embodied carbon becomes a step function of time); the solver is only
/// valid within a single fleet service life, which it asserts.

#include <optional>

#include "core/lifecycle_model.hpp"
#include "device/catalog.hpp"
#include "units/quantity.hpp"

namespace greenfpga::scenario {

/// Fixed-point context for a break-even query: the two variables not being
/// solved for are held at these values.
struct BreakevenContext {
  int app_count = 5;
  units::TimeSpan app_lifetime = 2.0 * units::unit::years;
  double app_volume = 1e6;
};

/// Engine primitives: the closed-form solves, probing `model` directly.
/// Each validates the one-time-accounting and single-fleet preconditions
/// (std::invalid_argument on violation) exactly as the corresponding
/// `BreakevenSolver` method.  Prefer `Engine::run` with a breakeven-kind
/// `ScenarioSpec`; these exist so the engine and the solver shim share one
/// implementation.
[[nodiscard]] std::optional<double> solve_app_count_breakeven(
    const core::LifecycleModel& model, const device::DomainTestcase& testcase,
    const BreakevenContext& context);
[[nodiscard]] std::optional<double> solve_lifetime_breakeven(
    const core::LifecycleModel& model, const device::DomainTestcase& testcase,
    const BreakevenContext& context);
[[nodiscard]] std::optional<double> solve_volume_breakeven(
    const core::LifecycleModel& model, const device::DomainTestcase& testcase,
    const BreakevenContext& context);

/// Closed-form crossover solver for one domain testcase.
///
/// \deprecated Thin shim over `scenario::Engine`; new code should build a
/// breakeven-kind `ScenarioSpec` and call `Engine::run`.
class BreakevenSolver {
 public:
  BreakevenSolver(core::LifecycleModel model, device::DomainTestcase testcase);

  /// The application count at which the platforms' totals are equal, with
  /// T_i and N_vol from `context`.  nullopt if the lines are parallel or
  /// the root is non-positive (one platform dominates at any count).
  [[nodiscard]] std::optional<double> app_count_breakeven(
      const BreakevenContext& context) const;

  /// The application lifetime (years) at which totals are equal, with
  /// N_app and N_vol from `context`.
  [[nodiscard]] std::optional<double> lifetime_breakeven(
      const BreakevenContext& context) const;

  /// The application volume at which totals are equal, with N_app and T_i
  /// from `context`.
  [[nodiscard]] std::optional<double> volume_breakeven(
      const BreakevenContext& context) const;

 private:
  core::LifecycleModel model_;
  device::DomainTestcase testcase_;
};

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_BREAKEVEN_HPP
