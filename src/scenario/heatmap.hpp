#ifndef GREENFPGA_SCENARIO_HEATMAP_HPP
#define GREENFPGA_SCENARIO_HEATMAP_HPP

/// \file heatmap.hpp
/// Pairwise parameter sweeps producing FPGA:ASIC ratio grids (Fig. 8).
///
/// Each heat-map cell holds the FPGA:ASIC total-CFP ratio at one
/// (x, y) parameter combination; the ratio = 1 contour is the crossover
/// front the paper marks with pink dashes.

#include <string>
#include <vector>

#include "core/lifecycle_model.hpp"
#include "device/catalog.hpp"
#include "scenario/sweep.hpp"

namespace greenfpga::scenario {

/// A filled ratio grid.  `ratio[iy][ix]` corresponds to (x[ix], y[iy]).
struct Heatmap {
  std::string x_name;
  std::string y_name;
  device::Domain domain = device::Domain::dnn;
  std::vector<double> x;
  std::vector<double> y;
  std::vector<std::vector<double>> ratio;

  /// Grid cells adjacent to the ratio = 1 contour: for each row iy, the
  /// interpolated x where the ratio crosses 1 (if any crossing exists in
  /// that row).
  struct ContourPoint {
    double x = 0.0;
    double y = 0.0;
  };
  [[nodiscard]] std::vector<ContourPoint> unity_contour() const;

  /// Smallest / largest ratio in the grid (for colour scaling).
  [[nodiscard]] double min_ratio() const;
  [[nodiscard]] double max_ratio() const;
};

/// Generates the paper's three pairwise heat-maps for one domain.
///
/// \deprecated Thin shim over `scenario::Engine`: every heat-map builds a
/// grid-kind `ScenarioSpec` and runs it, so the grid points are evaluated
/// in parallel with memoised embodied carbon.  New code should construct
/// specs directly.
class HeatmapEngine {
 public:
  HeatmapEngine(core::LifecycleModel model, device::DomainTestcase testcase);

  /// Fig. 8(a): N_vol held constant; axes N_app (x) by T_i (y).
  [[nodiscard]] Heatmap app_count_vs_lifetime(std::span<const int> app_counts,
                                              std::span<const double> lifetimes_years,
                                              double volume) const;

  /// Fig. 8(b): N_app held constant; axes N_vol (x) by T_i (y).
  [[nodiscard]] Heatmap volume_vs_lifetime(std::span<const double> volumes,
                                           std::span<const double> lifetimes_years,
                                           int app_count) const;

  /// Fig. 8(c): T_i held constant; axes N_vol (x) by N_app (y).
  [[nodiscard]] Heatmap volume_vs_app_count(std::span<const double> volumes,
                                            std::span<const int> app_counts,
                                            units::TimeSpan lifetime) const;

 private:
  SweepEngine engine_;
};

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_HEATMAP_HPP
