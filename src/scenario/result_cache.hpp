#ifndef GREENFPGA_SCENARIO_RESULT_CACHE_HPP
#define GREENFPGA_SCENARIO_RESULT_CACHE_HPP

/// \file result_cache.hpp
/// A thread-safe, content-addressed, sharded LRU cache of scenario
/// results, with an optional disk tier.
///
/// Operators re-ask the same lifecycle-CFP questions continuously with
/// slightly varying parameters; a long-lived process (`greenfpga serve`, a
/// batch over a manifest with repeated specs) should evaluate each
/// distinct question once.  The cache key is the *content* of the
/// evaluation -- the canonical JSON of the validated spec (which embeds
/// the full model suite) plus the resolved platform chips, built by
/// `Engine::cache_key` -- so two requests hit the same entry exactly when
/// the engine would compute byte-identical results for them.  Entries are
/// immutable `shared_ptr<const ScenarioResult>`s: readers keep their
/// snapshot alive even if the entry is evicted mid-use.
///
/// The key space is split across `shards` independent LRU shards (FNV-1a
/// digest of the key, modulo shard count), each with its own mutex, so
/// concurrent serve workers contend only when they touch the same shard.
/// One shard (the default) is plain LRU with globally exact recency;
/// with N shards, capacity and recency are per-shard (total capacity is
/// split evenly, rounding up).  Eviction counters and occupancy are
/// aggregated across shards for `GET /v1/stats`.
///
/// An optional `CacheStore` adds a disk tier: inserts are persisted,
/// and a memory miss consults the store before reporting a miss -- a
/// disk hit re-promotes the entry to memory and counts as a hit (plus
/// `disk_hits`).  Store IO runs *outside* every shard lock, so a slow
/// disk never serializes the memory tier.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace greenfpga::scenario {

struct ScenarioResult;
class CacheStore;

/// Monotonic cache counters plus the current occupancy, aggregated over
/// shards (each shard snapshots consistently under its own lock).
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t disk_hits = 0;  ///< subset of hits served from the store
  std::size_t size = 0;
  std::size_t capacity = 0;
  std::size_t shards = 1;
};

/// Content-addressed LRU over immutable scenario results.  Thread-safe.
class ResultCache {
 public:
  /// `capacity` is the maximum total entry count (>= 1 enforced; the
  /// cache would otherwise be an expensive way to spell "never hit"),
  /// split evenly across `shards` (>= 1 enforced) rounding up -- so the
  /// effective total is `ceil(capacity / shards) * shards`.
  explicit ResultCache(std::size_t capacity = 1024, std::size_t shards = 1);

  /// Attach (or detach, with nullptr) a disk tier.  Not synchronized
  /// with concurrent operations: attach before sharing the cache across
  /// threads.  The store must outlive the cache.
  void attach_store(CacheStore* store) { store_ = store; }

  /// The cached result for `key`, or nullptr.  Counts a hit or a miss and
  /// freshens the entry's LRU position.  On a memory miss with a store
  /// attached, a disk hit re-promotes the entry and counts as a hit.
  [[nodiscard]] std::shared_ptr<const ScenarioResult> lookup(const std::string& key);

  /// Insert (or refresh) `key -> result`, evicting the least recently
  /// used entry of the key's shard when over capacity.  `result` must not
  /// be null.  Persisted to the store when one is attached (best-effort,
  /// outside the shard lock).
  void insert(const std::string& key, std::shared_ptr<const ScenarioResult> result);

  /// Drop every in-memory entry (counters are preserved: they are
  /// lifetime totals).  Disk entries are untouched.
  void clear();

  [[nodiscard]] ResultCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const ScenarioResult> result;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t disk_hits = 0;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key);

  /// Insert/refresh under `shard.mutex` (already held by the caller).
  void insert_locked(Shard& shard, const std::string& key,
                     std::shared_ptr<const ScenarioResult> result);

  std::size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  CacheStore* store_ = nullptr;
};

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_RESULT_CACHE_HPP
