#ifndef GREENFPGA_SCENARIO_RESULT_CACHE_HPP
#define GREENFPGA_SCENARIO_RESULT_CACHE_HPP

/// \file result_cache.hpp
/// A thread-safe, content-addressed LRU cache of scenario results.
///
/// Operators re-ask the same lifecycle-CFP questions continuously with
/// slightly varying parameters; a long-lived process (`greenfpga serve`, a
/// batch over a manifest with repeated specs) should evaluate each
/// distinct question once.  The cache key is the *content* of the
/// evaluation -- the canonical JSON of the validated spec (which embeds
/// the full model suite) plus the resolved platform chips, built by
/// `Engine::cache_key` -- so two requests hit the same entry exactly when
/// the engine would compute byte-identical results for them.  Entries are
/// immutable `shared_ptr<const ScenarioResult>`s: readers keep their
/// snapshot alive even if the entry is evicted mid-use.
///
/// Eviction is least-recently-used with a fixed entry capacity;
/// hit/miss/eviction counters are surfaced on `GET /v1/stats`.  All
/// operations take one mutex -- the cache serialises microseconds of
/// bookkeeping around milliseconds of model evaluation, so a sharded
/// design is not warranted yet.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace greenfpga::scenario {

struct ScenarioResult;

/// Monotonic cache counters plus the current occupancy (a consistent
/// snapshot: taken under the same lock as the operations).
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// Content-addressed LRU over immutable scenario results.  Thread-safe.
class ResultCache {
 public:
  /// `capacity` is the maximum entry count (>= 1 enforced; the cache
  /// would otherwise be an expensive way to spell "never hit").
  explicit ResultCache(std::size_t capacity = 1024);

  /// The cached result for `key`, or nullptr.  Counts a hit or a miss and
  /// freshens the entry's LRU position.
  [[nodiscard]] std::shared_ptr<const ScenarioResult> lookup(const std::string& key);

  /// Insert (or refresh) `key -> result`, evicting the least recently
  /// used entry when over capacity.  `result` must not be null.
  void insert(const std::string& key, std::shared_ptr<const ScenarioResult> result);

  /// Drop every entry (counters are preserved: they are lifetime totals).
  void clear();

  [[nodiscard]] ResultCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const ScenarioResult> result;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_RESULT_CACHE_HPP
