/// \file engine.cpp
/// Spec dispatch through the kind registry, the batch task pool, and
/// legacy-shaped views.  Kind evaluation itself lives in the modules
/// under scenario/kinds/.

#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "act/grid_profile.hpp"
#include "core/config_io.hpp"
#include "core/parallel.hpp"
#include "scenario/kind_registry.hpp"
#include "scenario/result_cache.hpp"

namespace greenfpga::scenario {

/// Spec validation + platform resolution + grid-profile application: the
/// shared front half of every entry point.
struct Engine::PreparedRun {
  ScenarioResult result;   ///< spec as run, platform names, resolved chips
  core::ModelSuite suite;  ///< effective suite (grid profile applied)
};

namespace {

using core::parallel_for_state;

/// Replace the flat use-phase intensity with the profile-scheduled one.
core::ModelSuite apply_grid_profile(core::ModelSuite suite, const GridProfileSpec& spec) {
  act::DailyProfile profile;
  if (spec.profile == "uniform") {
    profile = act::DailyProfile();
  } else if (spec.profile == "solar_duck") {
    profile = act::DailyProfile::solar_duck();
  } else if (spec.profile == "windy_night") {
    profile = act::DailyProfile::windy_night();
  } else {
    throw std::invalid_argument("Engine: unknown grid profile '" + spec.profile +
                                "' (uniform, solar_duck, windy_night)");
  }
  act::DutySchedulingPolicy policy = act::DutySchedulingPolicy::uniform;
  if (spec.policy == "uniform") {
    policy = act::DutySchedulingPolicy::uniform;
  } else if (spec.policy == "carbon_aware") {
    policy = act::DutySchedulingPolicy::carbon_aware;
  } else if (spec.policy == "worst_case") {
    policy = act::DutySchedulingPolicy::worst_case;
  } else {
    throw std::invalid_argument("Engine: unknown duty policy '" + spec.policy +
                                "' (uniform, carbon_aware, worst_case)");
  }
  suite.operation.use_intensity = act::scheduled_intensity(
      suite.operation.use_intensity, profile, suite.operation.duty_cycle, policy);
  return suite;
}

}  // namespace

std::vector<double> MonteCarloUq::ratio_samples(std::size_t index) const {
  if (index == 0 || index >= sample_totals_kg.size()) {
    throw std::out_of_range("MonteCarloUq::ratio_samples: no platform " +
                            std::to_string(index));
  }
  const std::vector<double>& baseline = sample_totals_kg.front();
  const std::vector<double>& platform = sample_totals_kg[index];
  std::vector<double> ratios(platform.size());
  for (std::size_t i = 0; i < platform.size(); ++i) {
    ratios[i] = platform[i] / baseline[i];
  }
  return ratios;
}

double EvalPoint::ratio(std::size_t index, std::size_t baseline) const {
  return platforms.at(index).total.total().canonical() /
         platforms.at(baseline).total.total().canonical();
}

std::optional<std::size_t> ScenarioResult::platform_index(device::ChipKind kind) const {
  for (std::size_t i = 0; i < resolved_chips.size(); ++i) {
    if (resolved_chips[i].kind == kind) {
      return i;
    }
  }
  return std::nullopt;
}

core::Comparison ScenarioResult::comparison() const {
  if (points.size() != 1) {
    throw std::logic_error("ScenarioResult::comparison: needs exactly one point");
  }
  const auto asic = platform_index(device::ChipKind::asic);
  const auto fpga = platform_index(device::ChipKind::fpga);
  if (!asic || !fpga) {
    throw std::logic_error("ScenarioResult::comparison: needs ASIC and FPGA platforms");
  }
  return core::Comparison{.asic = points.front().platforms[*asic],
                          .fpga = points.front().platforms[*fpga]};
}

SweepSeries ScenarioResult::sweep_series() const {
  if (spec.axes.size() != 1) {
    throw std::logic_error("ScenarioResult::sweep_series: needs exactly one axis");
  }
  const auto asic = platform_index(device::ChipKind::asic);
  const auto fpga = platform_index(device::ChipKind::fpga);
  if (!asic || !fpga) {
    throw std::logic_error("ScenarioResult::sweep_series: needs ASIC and FPGA platforms");
  }
  SweepSeries series;
  series.parameter = spec.axes.front().label();
  series.domain = spec.domain;
  series.x.reserve(points.size());
  series.asic.reserve(points.size());
  series.fpga.reserve(points.size());
  for (const EvalPoint& point : points) {
    series.x.push_back(point.coords.front());
    series.asic.push_back(point.platforms[*asic].total);
    series.fpga.push_back(point.platforms[*fpga].total);
  }
  return series;
}

Heatmap ScenarioResult::heatmap() const {
  if (spec.axes.size() != 2) {
    throw std::logic_error("ScenarioResult::heatmap: needs exactly two axes");
  }
  const auto asic = platform_index(device::ChipKind::asic);
  const auto fpga = platform_index(device::ChipKind::fpga);
  if (!asic || !fpga) {
    throw std::logic_error("ScenarioResult::heatmap: needs ASIC and FPGA platforms");
  }
  Heatmap map;
  map.x_name = spec.axes[0].label();
  map.y_name = spec.axes[1].label();
  map.domain = spec.domain;
  map.x = spec.axes[0].values();
  map.y = spec.axes[1].values();
  map.ratio.assign(map.y.size(), std::vector<double>(map.x.size(), 0.0));
  if (points.size() != map.x.size() * map.y.size()) {
    throw std::logic_error("ScenarioResult::heatmap: point count does not match axes");
  }
  for (std::size_t iy = 0; iy < map.y.size(); ++iy) {
    for (std::size_t ix = 0; ix < map.x.size(); ++ix) {
      const EvalPoint& point = points[iy * map.x.size() + ix];
      map.ratio[iy][ix] = point.platforms[*fpga].total.total().canonical() /
                          point.platforms[*asic].total.total().canonical();
    }
  }
  return map;
}

Engine::Engine(EngineOptions options)
    : threads_(options.threads > 0 ? std::min(options.threads, kMaxThreads)
                                   : default_threads()),
      registry_(options.registry),
      cache_(options.cache) {}

int Engine::default_threads() {
  if (const char* env = std::getenv("GREENFPGA_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && end != env && *end == '\0' && parsed >= 1) {
      return static_cast<int>(std::min<long>(parsed, kMaxThreads));
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

const device::PlatformRegistry& Engine::registry() const {
  return registry_ != nullptr ? *registry_ : device::PlatformRegistry::builtins();
}

Engine::PreparedRun Engine::prepare(const ScenarioSpec& spec) const {
  spec.validate();
  PreparedRun prepared;
  prepared.result.spec = spec;
  if (prepared.result.spec.platforms.empty()) {
    const KindModule& module = kind_module(spec.kind);
    prepared.result.spec.platforms =
        module.default_platforms != nullptr
            ? module.default_platforms()
            : std::vector<PlatformRef>{
                  PlatformRef{.name = "asic", .chip = std::nullopt},
                  PlatformRef{.name = "fpga", .chip = std::nullopt}};
  }
  for (const PlatformRef& platform : prepared.result.spec.platforms) {
    prepared.result.platform_names.push_back(platform.name);
    prepared.result.resolved_chips.push_back(
        platform.chip ? *platform.chip
                      : registry().resolve(platform.name, prepared.result.spec.domain));
  }
  prepared.suite = prepared.result.spec.grid_profile
                       ? apply_grid_profile(prepared.result.spec.suite,
                                            *prepared.result.spec.grid_profile)
                       : prepared.result.spec.suite;
  return prepared;
}

namespace {

/// The content-address of a prepared evaluation: compact canonical JSON
/// of the as-run spec (platforms defaulted, suite embedded) plus the
/// registry-resolved chips.  Everything the engine's deterministic answer
/// depends on is in these bytes.
struct ContentKey {
  std::string bytes;
  std::uint64_t fingerprint = 0;  ///< FNV-1a of `bytes`
};

ContentKey content_key(const ScenarioResult& resolved) {
  io::Json key = io::Json::object();
  key["spec"] = spec_to_json(resolved.spec);
  io::Json chips = io::Json::array();
  for (const device::ChipSpec& chip : resolved.resolved_chips) {
    chips.push_back(core::to_json(chip));
  }
  key["platforms"] = std::move(chips);
  ContentKey out;
  out.fingerprint = key.dump_to_hashed(out.bytes, 0);
  return out;
}

}  // namespace

std::string Engine::cache_key(const ScenarioSpec& spec) const {
  return content_key(prepare(spec).result).bytes;
}

ScenarioResult Engine::run(const ScenarioSpec& spec) const {
  if (cache_ != nullptr) {
    return *run_cached(spec).result;
  }
  return run_prepared(prepare(spec));
}

Engine::CachedRun Engine::run_cached(const ScenarioSpec& spec) const {
  PreparedRun prepared = prepare(spec);
  CachedRun outcome;
  ContentKey key = content_key(prepared.result);
  outcome.key = std::move(key.bytes);
  outcome.fingerprint = key.fingerprint;
  if (cache_ != nullptr) {
    if (std::shared_ptr<const ScenarioResult> hit = cache_->lookup(outcome.key)) {
      outcome.result = std::move(hit);
      outcome.hit = true;
      return outcome;
    }
  }
  auto fresh = std::make_shared<ScenarioResult>(run_prepared(std::move(prepared)));
  if (cache_ != nullptr) {
    cache_->insert(outcome.key, fresh);
  }
  outcome.result = std::move(fresh);
  return outcome;
}

ScenarioResult Engine::run_prepared(PreparedRun prepared) const {
  ScenarioResult result = std::move(prepared.result);
  const core::ModelSuite suite = std::move(prepared.suite);
  kind_module(result.spec.kind)
      .execute(KindRunContext{.threads = threads_}, suite, result);
  return result;
}

UqStat summarise_samples(std::vector<double> values,
                         const std::vector<double>& percentiles) {
  if (values.empty()) {
    throw std::invalid_argument("summarise_samples: need at least one value");
  }
  for (const double p : percentiles) {
    if (!(p >= 0.0) || !(p <= 100.0)) {
      throw std::invalid_argument(
          "summarise_samples: percentiles must be in [0, 100]");
    }
  }
  UqStat stat;
  const std::size_t n = values.size();
  // Sort first so the accumulation order (and thus the last-ulp bits of
  // mean/stddev) is a function of the value set alone.
  std::sort(values.begin(), values.end());
  if (values.front() == values.back()) {
    // All samples identical (e.g. an empty distribution list collapsing
    // to the point estimate): the mean is exact and the variance exactly
    // zero -- a naive sum would round and report phantom uncertainty.
    stat.mean = values.front();
    stat.stddev = 0.0;
    stat.percentile_values.assign(percentiles.size(), values.front());
    return stat;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  stat.mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (const double v : values) {
    sq += (v - stat.mean) * (v - stat.mean);
  }
  stat.stddev = n > 1 ? std::sqrt(sq / static_cast<double>(n - 1)) : 0.0;
  stat.percentile_values.reserve(percentiles.size());
  for (const double p : percentiles) {
    const double index = (p / 100.0) * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(std::floor(index));
    const auto hi = static_cast<std::size_t>(std::ceil(index));
    const double t = index - std::floor(index);
    stat.percentile_values.push_back(values[lo] * (1.0 - t) + values[hi] * t);
  }
  return stat;
}

std::vector<ScenarioResult> Engine::run_batch(const std::vector<ScenarioSpec>& specs) const {
  // Prepare (validate + resolve) every spec exactly once; the prepared
  // form both carries the content key and feeds the evaluator.
  std::vector<PreparedRun> prepared;
  prepared.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    prepared.push_back(prepare(spec));
  }
  if (cache_ == nullptr) {
    return run_batch_prepared(std::move(prepared));
  }

  // Content-address every spec, then look each *distinct* key up once:
  // duplicates within the batch and results cached by earlier runs are
  // never re-evaluated.
  std::vector<std::string> keys;
  keys.reserve(prepared.size());
  for (const PreparedRun& run : prepared) {
    keys.push_back(content_key(run.result).bytes);
  }
  std::unordered_map<std::string, std::shared_ptr<const ScenarioResult>> by_key;
  std::vector<std::size_t> to_eval;  // index of each distinct key's first spec
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    if (by_key.find(keys[i]) != by_key.end()) {
      continue;
    }
    std::shared_ptr<const ScenarioResult> hit = cache_->lookup(keys[i]);
    if (!hit) {
      to_eval.push_back(i);
    }
    by_key.emplace(keys[i], std::move(hit));
  }

  std::vector<PreparedRun> misses;
  misses.reserve(to_eval.size());
  for (const std::size_t i : to_eval) {
    misses.push_back(std::move(prepared[i]));
  }
  std::vector<ScenarioResult> fresh = run_batch_prepared(std::move(misses));
  for (std::size_t j = 0; j < to_eval.size(); ++j) {
    auto shared = std::make_shared<const ScenarioResult>(std::move(fresh[j]));
    cache_->insert(keys[to_eval[j]], shared);
    by_key[keys[to_eval[j]]] = std::move(shared);
  }

  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results.push_back(*by_key[keys[i]]);
  }
  return results;
}

std::vector<ScenarioResult> Engine::run_batch_prepared(
    std::vector<PreparedRun> prepared_runs) const {
  struct SpecJob {
    PreparedRun prepared;
    KindBatchPlan plan;        ///< empty run_job = single whole-spec task
    std::size_t suite_id = 0;  ///< into `suites` (uses_suite_model plans only)
  };
  struct Task {
    std::size_t spec = 0;
    std::size_t index = 0;  ///< plan task index; unused for whole-spec
  };

  // Move every prepared run into its (pre-sized, never reallocated) job
  // slot BEFORE planning: a plan may capture pointers to its suite and
  // rely on the result slot staying put.
  std::vector<SpecJob> jobs(prepared_runs.size());
  for (std::size_t s = 0; s < prepared_runs.size(); ++s) {
    jobs[s].prepared = std::move(prepared_runs[s]);
  }

  // Serial planning phase: ask each spec's module to flatten its work
  // into tasks, and deduplicate effective suites so workers can share one
  // memoised LifecycleModel across every spec using the same suite.
  std::vector<core::ModelSuite> suites;
  std::vector<std::string> suite_keys;  // canonical JSON, parallel to `suites`
  std::vector<Task> tasks;
  for (std::size_t s = 0; s < jobs.size(); ++s) {
    SpecJob& job = jobs[s];
    const KindModule& module = kind_module(job.prepared.result.spec.kind);
    if (module.plan_jobs != nullptr) {
      job.plan = module.plan_jobs(job.prepared.suite, job.prepared.result);
    }
    if (!job.plan.run_job) {
      // No task plan: the kind runs whole-spec on one worker (single
      // evaluations or internally small); a serial engine keeps the pool
      // flat.
      tasks.push_back(Task{.spec = s, .index = 0});
      continue;
    }
    if (job.plan.uses_suite_model) {
      const std::string key = core::to_json(job.prepared.suite).dump(0);
      std::size_t id = 0;
      while (id < suite_keys.size() && suite_keys[id] != key) {
        ++id;
      }
      if (id == suite_keys.size()) {
        suites.push_back(job.prepared.suite);
        suite_keys.push_back(key);
      }
      job.suite_id = id;
    }
    for (std::size_t i = 0; i < job.plan.task_count; ++i) {
      tasks.push_back(Task{.spec = s, .index = i});
    }
  }

  // One pool over the flattened task list.  Worker state: one lazily
  // built LifecycleModel per distinct suite (the embodied-carbon memo is
  // per model, so specs sharing a suite share fab/package/EOL results).
  using WorkerModels = std::vector<std::optional<core::LifecycleModel>>;
  parallel_for_state(
      tasks.size(), threads_, [&suites] { return WorkerModels(suites.size()); },
      [&](WorkerModels& models, std::size_t t) {
        const Task& task = tasks[t];
        SpecJob& job = jobs[task.spec];
        ScenarioResult& result = job.prepared.result;
        if (!job.plan.run_job) {
          const Engine serial(EngineOptions{.threads = 1, .registry = registry_});
          result = serial.run(result.spec);
          return;
        }
        core::LifecycleModel* model = nullptr;
        if (job.plan.uses_suite_model) {
          std::optional<core::LifecycleModel>& slot = models[job.suite_id];
          if (!slot) {
            slot.emplace(suites[job.suite_id]);
          }
          model = &*slot;
        }
        job.plan.run_job(model, task.index, result);
      });

  // Serial post phase: deterministic reductions.
  std::vector<ScenarioResult> results;
  results.reserve(jobs.size());
  for (SpecJob& job : jobs) {
    if (job.plan.assemble) {
      job.plan.assemble(job.prepared.result);
    }
    results.push_back(std::move(job.prepared.result));
  }
  return results;
}

}  // namespace greenfpga::scenario
