/// \file engine.cpp
/// Spec dispatch, the parallel point executor, and legacy-shaped views.

#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "act/grid_profile.hpp"
#include "core/config_io.hpp"
#include "core/parallel.hpp"
#include "scenario/result_cache.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

/// Spec validation + platform resolution + grid-profile application: the
/// shared front half of every entry point.
struct Engine::PreparedRun {
  ScenarioResult result;   ///< spec as run, platform names, resolved chips
  core::ModelSuite suite;  ///< effective suite (grid profile applied)
};

namespace {

using core::parallel_for_state;

/// The classic shape: each worker owns a private LifecycleModel built from
/// `suite` (the model's embodied-carbon memoisation is not thread-safe to
/// share).
template <typename Fn>
void parallel_for(std::size_t n, int threads, const core::ModelSuite& suite, Fn&& fn) {
  parallel_for_state(
      n, threads, [&suite] { return core::LifecycleModel(suite); }, std::forward<Fn>(fn));
}

/// Replace the flat use-phase intensity with the profile-scheduled one.
core::ModelSuite apply_grid_profile(core::ModelSuite suite, const GridProfileSpec& spec) {
  act::DailyProfile profile;
  if (spec.profile == "uniform") {
    profile = act::DailyProfile();
  } else if (spec.profile == "solar_duck") {
    profile = act::DailyProfile::solar_duck();
  } else if (spec.profile == "windy_night") {
    profile = act::DailyProfile::windy_night();
  } else {
    throw std::invalid_argument("Engine: unknown grid profile '" + spec.profile +
                                "' (uniform, solar_duck, windy_night)");
  }
  act::DutySchedulingPolicy policy = act::DutySchedulingPolicy::uniform;
  if (spec.policy == "uniform") {
    policy = act::DutySchedulingPolicy::uniform;
  } else if (spec.policy == "carbon_aware") {
    policy = act::DutySchedulingPolicy::carbon_aware;
  } else if (spec.policy == "worst_case") {
    policy = act::DutySchedulingPolicy::worst_case;
  } else {
    throw std::invalid_argument("Engine: unknown duty policy '" + spec.policy +
                                "' (uniform, carbon_aware, worst_case)");
  }
  suite.operation.use_intensity = act::scheduled_intensity(
      suite.operation.use_intensity, profile, suite.operation.duty_cycle, policy);
  return suite;
}

/// Apply one axis coordinate to the homogeneous schedule fields.
void apply_axis(ScheduleSpec& schedule, SweepVariable variable, double value) {
  switch (variable) {
    case SweepVariable::app_count:
      schedule.app_count = static_cast<int>(std::llround(value));
      return;
    case SweepVariable::lifetime_years:
      schedule.lifetime_years = value;
      return;
    case SweepVariable::volume:
      schedule.volume = value;
      return;
  }
  throw std::logic_error("Engine: unknown sweep variable");
}

/// Materialised point grid of a compare/sweep/grid spec.
struct PointPlan {
  std::vector<std::vector<double>> axis_values;
  std::size_t total = 1;
  bool keep_per_application = false;
};

PointPlan plan_points(const ScenarioSpec& spec) {
  PointPlan plan;
  plan.axis_values.reserve(spec.axes.size());
  for (const AxisSpec& axis : spec.axes) {
    plan.axis_values.push_back(axis.values());
    plan.total *= plan.axis_values.back().size();
  }
  plan.keep_per_application =
      spec.kind == ScenarioKind::compare || spec.outputs.per_application;
  return plan;
}

/// Evaluate scenario point `i` into `point` (pre-sized slot).  Pure in
/// (spec, plan, chips, i): results never depend on which worker runs it.
void evaluate_point(const ScenarioSpec& spec, const PointPlan& plan,
                    const std::vector<device::ChipSpec>& chips,
                    core::LifecycleModel& model, std::size_t i, EvalPoint& point) {
  ScheduleSpec schedule_spec = spec.schedule;
  std::size_t remainder = i;
  point.coords.reserve(plan.axis_values.size());
  for (const std::vector<double>& values : plan.axis_values) {
    const double value = values[remainder % values.size()];
    remainder /= values.size();
    point.coords.push_back(value);
  }
  for (std::size_t a = 0; a < plan.axis_values.size(); ++a) {
    apply_axis(schedule_spec, spec.axes[a].variable, point.coords[a]);
  }
  const workload::Schedule schedule = schedule_spec.materialise(spec.domain);
  point.platforms.reserve(chips.size());
  for (const device::ChipSpec& chip : chips) {
    point.platforms.push_back(model.evaluate(chip, schedule));
    if (!plan.keep_per_application) {
      point.platforms.back().per_application.clear();
      point.platforms.back().per_application.shrink_to_fit();
    }
  }
}

/// Per-spec montecarlo context: the schedule plus each distribution's
/// Table 1 applier, bound by index so the plan stays movable.
struct McPlan {
  std::vector<ParameterRange> known;
  std::vector<std::size_t> applier_index;  ///< into `known`, one per distribution
  workload::Schedule schedule;
};

McPlan plan_montecarlo(const ScenarioSpec& spec) {
  McPlan plan;
  plan.schedule = spec.schedule.materialise(spec.domain);
  // Bind each distribution to its Table 1 applier by name (spec.validate()
  // has already rejected unknown names).
  plan.known = table1_ranges();
  plan.applier_index.reserve(spec.montecarlo.distributions.size());
  for (const core::ParamDistribution& distribution : spec.montecarlo.distributions) {
    for (std::size_t r = 0; r < plan.known.size(); ++r) {
      if (plan.known[r].name == distribution.parameter) {
        plan.applier_index.push_back(r);
        break;
      }
    }
  }
  return plan;
}

MonteCarloUq make_mc_skeleton(const ScenarioSpec& spec, std::size_t platforms) {
  MonteCarloUq uq;
  uq.samples = spec.montecarlo.samples;
  uq.percentiles = spec.montecarlo.percentiles;
  uq.sample_totals_kg.assign(
      platforms,
      std::vector<double>(static_cast<std::size_t>(spec.montecarlo.samples), 0.0));
  return uq;
}

/// Evaluate Monte-Carlo sample `i` into column i of `uq.sample_totals_kg`.
/// Sample i draws its parameter values from the counter stream
/// (seed, i, dimension) -- fully determined by the sample index, never by
/// which worker ran it or in what order.  Every sample re-parameterises
/// the suite, so the memoised per-worker model is useless here: each
/// sample builds its own LifecycleModel from the sampled suite.
void evaluate_mc_sample(const ScenarioSpec& spec, const McPlan& plan,
                        const core::ModelSuite& suite,
                        const std::vector<device::ChipSpec>& chips, std::size_t i,
                        MonteCarloUq& uq) {
  const MonteCarloUqSpec& mc = spec.montecarlo;
  core::ModelSuite sampled = suite;
  for (std::size_t j = 0; j < mc.distributions.size(); ++j) {
    const double u = core::counter_uniform01(mc.seed, i, j);
    plan.known[plan.applier_index[j]].apply(sampled, mc.distributions[j].sample(u));
  }
  const core::LifecycleModel model(sampled);
  for (std::size_t p = 0; p < chips.size(); ++p) {
    uq.sample_totals_kg[p][i] =
        model.evaluate(chips[p], plan.schedule).total.total().canonical();
  }
}

/// Serial reduction over the filled sample matrix (deterministic order).
void reduce_montecarlo(MonteCarloUq& uq) {
  const std::size_t platforms = uq.sample_totals_kg.size();
  const std::size_t samples = uq.sample_totals_kg.front().size();
  uq.platform_total.reserve(platforms);
  for (std::size_t p = 0; p < platforms; ++p) {
    uq.platform_total.push_back(summarise_samples(uq.sample_totals_kg[p], uq.percentiles));
  }
  for (std::size_t p = 1; p < platforms; ++p) {
    const std::vector<double> ratios = uq.ratio_samples(p);
    std::size_t wins = 0;
    for (const double r : ratios) {
      if (r < 1.0) {
        ++wins;
      }
    }
    uq.win_fraction.push_back(static_cast<double>(wins) / static_cast<double>(samples));
    uq.ratio.push_back(summarise_samples(ratios, uq.percentiles));
  }
}

/// The ASIC/FPGA testcase required by the testcase-shaped kinds.  Exactly
/// two platforms: silently ignoring extras would let a user believe e.g.
/// a GPU took part in a timeline that cannot model it.  The error names
/// the actual platform list so a four-way spec fails with an actionable
/// message instead of a bare arity complaint.
device::DomainTestcase testcase_of(const ScenarioResult& result,
                                   const std::string& kind_name) {
  const auto asic = result.platform_index(device::ChipKind::asic);
  const auto fpga = result.platform_index(device::ChipKind::fpga);
  if (!asic || !fpga || result.resolved_chips.size() != 2) {
    std::string got;
    for (const std::string& name : result.platform_names) {
      got += got.empty() ? name : ", " + name;
    }
    throw std::invalid_argument("Engine: " + kind_name +
                                " scenarios need exactly one ASIC and one FPGA "
                                "platform, got {" +
                                got + "}");
  }
  return device::DomainTestcase{.domain = result.spec.domain,
                                .asic = result.resolved_chips[*asic],
                                .fpga = result.resolved_chips[*fpga]};
}

}  // namespace

std::vector<double> MonteCarloUq::ratio_samples(std::size_t index) const {
  if (index == 0 || index >= sample_totals_kg.size()) {
    throw std::out_of_range("MonteCarloUq::ratio_samples: no platform " +
                            std::to_string(index));
  }
  const std::vector<double>& baseline = sample_totals_kg.front();
  const std::vector<double>& platform = sample_totals_kg[index];
  std::vector<double> ratios(platform.size());
  for (std::size_t i = 0; i < platform.size(); ++i) {
    ratios[i] = platform[i] / baseline[i];
  }
  return ratios;
}

double EvalPoint::ratio(std::size_t index, std::size_t baseline) const {
  return platforms.at(index).total.total().canonical() /
         platforms.at(baseline).total.total().canonical();
}

std::optional<std::size_t> ScenarioResult::platform_index(device::ChipKind kind) const {
  for (std::size_t i = 0; i < resolved_chips.size(); ++i) {
    if (resolved_chips[i].kind == kind) {
      return i;
    }
  }
  return std::nullopt;
}

core::Comparison ScenarioResult::comparison() const {
  if (points.size() != 1) {
    throw std::logic_error("ScenarioResult::comparison: needs exactly one point");
  }
  const auto asic = platform_index(device::ChipKind::asic);
  const auto fpga = platform_index(device::ChipKind::fpga);
  if (!asic || !fpga) {
    throw std::logic_error("ScenarioResult::comparison: needs ASIC and FPGA platforms");
  }
  return core::Comparison{.asic = points.front().platforms[*asic],
                          .fpga = points.front().platforms[*fpga]};
}

SweepSeries ScenarioResult::sweep_series() const {
  if (spec.axes.size() != 1) {
    throw std::logic_error("ScenarioResult::sweep_series: needs exactly one axis");
  }
  const auto asic = platform_index(device::ChipKind::asic);
  const auto fpga = platform_index(device::ChipKind::fpga);
  if (!asic || !fpga) {
    throw std::logic_error("ScenarioResult::sweep_series: needs ASIC and FPGA platforms");
  }
  SweepSeries series;
  series.parameter = spec.axes.front().label();
  series.domain = spec.domain;
  series.x.reserve(points.size());
  series.asic.reserve(points.size());
  series.fpga.reserve(points.size());
  for (const EvalPoint& point : points) {
    series.x.push_back(point.coords.front());
    series.asic.push_back(point.platforms[*asic].total);
    series.fpga.push_back(point.platforms[*fpga].total);
  }
  return series;
}

Heatmap ScenarioResult::heatmap() const {
  if (spec.axes.size() != 2) {
    throw std::logic_error("ScenarioResult::heatmap: needs exactly two axes");
  }
  const auto asic = platform_index(device::ChipKind::asic);
  const auto fpga = platform_index(device::ChipKind::fpga);
  if (!asic || !fpga) {
    throw std::logic_error("ScenarioResult::heatmap: needs ASIC and FPGA platforms");
  }
  Heatmap map;
  map.x_name = spec.axes[0].label();
  map.y_name = spec.axes[1].label();
  map.domain = spec.domain;
  map.x = spec.axes[0].values();
  map.y = spec.axes[1].values();
  map.ratio.assign(map.y.size(), std::vector<double>(map.x.size(), 0.0));
  if (points.size() != map.x.size() * map.y.size()) {
    throw std::logic_error("ScenarioResult::heatmap: point count does not match axes");
  }
  for (std::size_t iy = 0; iy < map.y.size(); ++iy) {
    for (std::size_t ix = 0; ix < map.x.size(); ++ix) {
      const EvalPoint& point = points[iy * map.x.size() + ix];
      map.ratio[iy][ix] = point.platforms[*fpga].total.total().canonical() /
                          point.platforms[*asic].total.total().canonical();
    }
  }
  return map;
}

Engine::Engine(EngineOptions options)
    : threads_(options.threads > 0 ? std::min(options.threads, kMaxThreads)
                                   : default_threads()),
      registry_(options.registry),
      cache_(options.cache) {}

int Engine::default_threads() {
  if (const char* env = std::getenv("GREENFPGA_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && end != env && *end == '\0' && parsed >= 1) {
      return static_cast<int>(std::min<long>(parsed, kMaxThreads));
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

const device::PlatformRegistry& Engine::registry() const {
  return registry_ != nullptr ? *registry_ : device::PlatformRegistry::builtins();
}

Engine::PreparedRun Engine::prepare(const ScenarioSpec& spec) const {
  spec.validate();
  PreparedRun prepared;
  prepared.result.spec = spec;
  if (prepared.result.spec.platforms.empty()) {
    // node_dse explores ONE subject device across nodes (the domain FPGA
    // by default); every other kind defaults to the paper's ASIC/FPGA
    // head-to-head.
    prepared.result.spec.platforms =
        spec.kind == ScenarioKind::node_dse
            ? std::vector<PlatformRef>{PlatformRef{.name = "fpga", .chip = std::nullopt}}
            : std::vector<PlatformRef>{
                  PlatformRef{.name = "asic", .chip = std::nullopt},
                  PlatformRef{.name = "fpga", .chip = std::nullopt}};
  }
  for (const PlatformRef& platform : prepared.result.spec.platforms) {
    prepared.result.platform_names.push_back(platform.name);
    prepared.result.resolved_chips.push_back(
        platform.chip ? *platform.chip
                      : registry().resolve(platform.name, prepared.result.spec.domain));
  }
  prepared.suite = prepared.result.spec.grid_profile
                       ? apply_grid_profile(prepared.result.spec.suite,
                                            *prepared.result.spec.grid_profile)
                       : prepared.result.spec.suite;
  return prepared;
}

namespace {

/// The content-address of a prepared evaluation: compact canonical JSON
/// of the as-run spec (platforms defaulted, suite embedded) plus the
/// registry-resolved chips.  Everything the engine's deterministic answer
/// depends on is in these bytes.
struct ContentKey {
  std::string bytes;
  std::uint64_t fingerprint = 0;  ///< FNV-1a of `bytes`
};

ContentKey content_key(const ScenarioResult& resolved) {
  io::Json key = io::Json::object();
  key["spec"] = spec_to_json(resolved.spec);
  io::Json chips = io::Json::array();
  for (const device::ChipSpec& chip : resolved.resolved_chips) {
    chips.push_back(core::to_json(chip));
  }
  key["platforms"] = std::move(chips);
  ContentKey out;
  out.fingerprint = key.dump_to_hashed(out.bytes, 0);
  return out;
}

}  // namespace

std::string Engine::cache_key(const ScenarioSpec& spec) const {
  return content_key(prepare(spec).result).bytes;
}

ScenarioResult Engine::run(const ScenarioSpec& spec) const {
  if (cache_ != nullptr) {
    return *run_cached(spec).result;
  }
  return run_prepared(prepare(spec));
}

Engine::CachedRun Engine::run_cached(const ScenarioSpec& spec) const {
  PreparedRun prepared = prepare(spec);
  CachedRun outcome;
  ContentKey key = content_key(prepared.result);
  outcome.key = std::move(key.bytes);
  outcome.fingerprint = key.fingerprint;
  if (cache_ != nullptr) {
    if (std::shared_ptr<const ScenarioResult> hit = cache_->lookup(outcome.key)) {
      outcome.result = std::move(hit);
      outcome.hit = true;
      return outcome;
    }
  }
  auto fresh = std::make_shared<ScenarioResult>(run_prepared(std::move(prepared)));
  if (cache_ != nullptr) {
    cache_->insert(outcome.key, fresh);
  }
  outcome.result = std::move(fresh);
  return outcome;
}

ScenarioResult Engine::run_prepared(PreparedRun prepared) const {
  ScenarioResult result = std::move(prepared.result);
  const core::ModelSuite suite = std::move(prepared.suite);

  switch (result.spec.kind) {
    case ScenarioKind::compare:
    case ScenarioKind::sweep:
    case ScenarioKind::grid:
      run_points(result.spec, suite, result);
      return result;
    case ScenarioKind::timeline:
      run_timeline(result.spec, suite, result);
      return result;
    case ScenarioKind::breakeven:
      run_breakeven(result.spec, suite, result);
      return result;
    case ScenarioKind::node_dse:
      run_node_dse(result.spec, suite, result);
      return result;
    case ScenarioKind::sensitivity:
      run_sensitivity(result.spec, suite, result);
      return result;
    case ScenarioKind::montecarlo:
      run_montecarlo(result.spec, suite, result);
      return result;
    case ScenarioKind::frontier:
      run_frontier(result.spec, suite, result);
      return result;
  }
  throw std::logic_error("Engine: unknown scenario kind");
}

void Engine::run_points(const ScenarioSpec& spec, const core::ModelSuite& suite,
                        ScenarioResult& result) const {
  // Coordinate grid: axis 0 is the inner (fastest) dimension.
  const PointPlan plan = plan_points(spec);
  result.points.resize(plan.total);
  parallel_for(plan.total, threads_, suite,
               [&](core::LifecycleModel& model, std::size_t i) {
                 evaluate_point(spec, plan, result.resolved_chips, model, i,
                                result.points[i]);
               });
}

void Engine::run_timeline(const ScenarioSpec& spec, const core::ModelSuite& suite,
                          ScenarioResult& result) const {
  const device::DomainTestcase testcase = testcase_of(result, "timeline");
  const core::LifecycleModel model(suite);
  result.timeline =
      simulate_timeline(model, testcase, spec.timeline.horizon_years,
                        spec.schedule.lifetime_years, spec.schedule.volume,
                        spec.timeline.step_years);
}

void Engine::run_breakeven(const ScenarioSpec& spec, const core::ModelSuite& suite,
                           ScenarioResult& result) const {
  const device::DomainTestcase testcase = testcase_of(result, "breakeven");
  const core::LifecycleModel model(suite);
  const BreakevenContext context{
      .app_count = spec.schedule.app_count,
      .app_lifetime = spec.schedule.lifetime_years * units::unit::years,
      .app_volume = spec.schedule.volume,
  };
  BreakevenReport report;
  if (spec.breakeven.solve_app_count) {
    report.app_count = solve_app_count_breakeven(model, testcase, context);
  }
  if (spec.breakeven.solve_lifetime) {
    report.lifetime_years = solve_lifetime_breakeven(model, testcase, context);
  }
  if (spec.breakeven.solve_volume) {
    report.volume = solve_volume_breakeven(model, testcase, context);
  }
  result.breakeven = report;
}

void Engine::run_node_dse(const ScenarioSpec& spec, const core::ModelSuite& suite,
                          ScenarioResult& result) const {
  // The subject is dse.chip when pinned, else the spec's single platform
  // (prepare() defaults an empty list to {"fpga"}).  More than one
  // platform is a shape error: a node DSE ranks retargets of ONE device.
  if (!spec.dse.chip && result.resolved_chips.size() != 1) {
    std::string got;
    for (const std::string& name : result.platform_names) {
      got += got.empty() ? name : ", " + name;
    }
    throw std::invalid_argument(
        "Engine: node_dse scenarios explore one subject platform (or an explicit "
        "dse.chip), got {" +
        got + "}");
  }
  const device::ChipSpec subject =
      spec.dse.chip ? *spec.dse.chip : result.resolved_chips.front();
  const std::span<const tech::ProcessNode> nodes =
      spec.dse.nodes.empty() ? tech::all_nodes()
                             : std::span<const tech::ProcessNode>(spec.dse.nodes);
  const workload::Schedule schedule = spec.schedule.materialise(spec.domain);

  // Retarget serially (cheap, and infeasible nodes are simply skipped),
  // then evaluate the surviving candidates on the pool.
  std::vector<device::ChipSpec> retargeted;
  retargeted.reserve(nodes.size());
  for (const tech::ProcessNode node : nodes) {
    try {
      retargeted.push_back(retarget_to_node(subject, node));
    } catch (const std::invalid_argument&) {
      continue;  // does not fit the reticle on this node
    }
  }
  result.candidates.resize(retargeted.size());
  parallel_for(retargeted.size(), threads_, suite,
               [&](core::LifecycleModel& model, std::size_t i) {
                 result.candidates[i] =
                     evaluate_node_candidate(model, schedule, retargeted[i]);
               });
  rank_node_candidates(result.candidates);  // throws when nothing fits a reticle
}

void Engine::run_sensitivity(const ScenarioSpec& spec, const core::ModelSuite& suite,
                             ScenarioResult& result) const {
  const device::DomainTestcase testcase = testcase_of(result, "sensitivity");
  const workload::Schedule schedule = spec.schedule.materialise(spec.domain);
  if (spec.sensitivity.run_tornado) {
    result.tornado =
        detail::tornado_analysis(suite, testcase, schedule, spec.sensitivity.ranges);
  }
  if (spec.sensitivity.run_monte_carlo) {
    result.monte_carlo = detail::monte_carlo_analysis(
        suite, testcase, schedule, spec.sensitivity.ranges, spec.sensitivity.samples,
        spec.sensitivity.seed);
  }
}

UqStat summarise_samples(std::vector<double> values,
                         const std::vector<double>& percentiles) {
  if (values.empty()) {
    throw std::invalid_argument("summarise_samples: need at least one value");
  }
  for (const double p : percentiles) {
    if (!(p >= 0.0) || !(p <= 100.0)) {
      throw std::invalid_argument(
          "summarise_samples: percentiles must be in [0, 100]");
    }
  }
  UqStat stat;
  const std::size_t n = values.size();
  // Sort first so the accumulation order (and thus the last-ulp bits of
  // mean/stddev) is a function of the value set alone.
  std::sort(values.begin(), values.end());
  if (values.front() == values.back()) {
    // All samples identical (e.g. an empty distribution list collapsing
    // to the point estimate): the mean is exact and the variance exactly
    // zero -- a naive sum would round and report phantom uncertainty.
    stat.mean = values.front();
    stat.stddev = 0.0;
    stat.percentile_values.assign(percentiles.size(), values.front());
    return stat;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  stat.mean = sum / static_cast<double>(n);
  double sq = 0.0;
  for (const double v : values) {
    sq += (v - stat.mean) * (v - stat.mean);
  }
  stat.stddev = n > 1 ? std::sqrt(sq / static_cast<double>(n - 1)) : 0.0;
  stat.percentile_values.reserve(percentiles.size());
  for (const double p : percentiles) {
    const double index = (p / 100.0) * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(std::floor(index));
    const auto hi = static_cast<std::size_t>(std::ceil(index));
    const double t = index - std::floor(index);
    stat.percentile_values.push_back(values[lo] * (1.0 - t) + values[hi] * t);
  }
  return stat;
}

void Engine::run_montecarlo(const ScenarioSpec& spec, const core::ModelSuite& suite,
                            ScenarioResult& result) const {
  const McPlan plan = plan_montecarlo(spec);
  MonteCarloUq uq = make_mc_skeleton(spec, result.resolved_chips.size());

  // Shard samples across the pool: every sample writes to pre-sized slot
  // i, so results are bit-identical for any thread count.
  parallel_for_state(
      static_cast<std::size_t>(spec.montecarlo.samples), threads_, [] { return 0; },
      [&](int& /*state*/, std::size_t i) {
        evaluate_mc_sample(spec, plan, suite, result.resolved_chips, i, uq);
      });

  // Serial reduction on the caller's thread (deterministic order).
  reduce_montecarlo(uq);
  result.uncertainty = std::move(uq);
}

void Engine::run_frontier(const ScenarioSpec& spec, const core::ModelSuite& suite,
                          ScenarioResult& result) const {
  dse::FrontierProblem problem;
  problem.frontier = spec.frontier;
  problem.platform_names = result.platform_names;
  problem.chips = result.resolved_chips;
  problem.suite = suite;
  problem.domain = spec.domain;
  problem.app_count = spec.schedule.app_count;
  problem.lifetime_years = spec.schedule.lifetime_years;
  problem.volume = spec.schedule.volume;
  problem.threads = threads_;
  problem.retarget = [](const device::ChipSpec& chip, tech::ProcessNode node) {
    return retarget_to_node(chip, node);
  };
  if (spec.frontier.confidence_samples > 0) {
    // Bind each montecarlo distribution to its Table 1 applier by name
    // (spec.validate() has already rejected unknown names), exactly like
    // the montecarlo kind.
    const std::vector<ParameterRange> known = table1_ranges();
    for (const core::ParamDistribution& distribution : spec.montecarlo.distributions) {
      for (const ParameterRange& range : known) {
        if (range.name == distribution.parameter) {
          problem.sampled.push_back(
              dse::SampledParameter{.distribution = distribution, .apply = range.apply});
          break;
        }
      }
    }
  }
  result.frontier = dse::FrontierSearch(std::move(problem)).run();
}

std::vector<ScenarioResult> Engine::run_batch(const std::vector<ScenarioSpec>& specs) const {
  // Prepare (validate + resolve) every spec exactly once; the prepared
  // form both carries the content key and feeds the evaluator.
  std::vector<PreparedRun> prepared;
  prepared.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    prepared.push_back(prepare(spec));
  }
  if (cache_ == nullptr) {
    return run_batch_prepared(std::move(prepared));
  }

  // Content-address every spec, then look each *distinct* key up once:
  // duplicates within the batch and results cached by earlier runs are
  // never re-evaluated.
  std::vector<std::string> keys;
  keys.reserve(prepared.size());
  for (const PreparedRun& run : prepared) {
    keys.push_back(content_key(run.result).bytes);
  }
  std::unordered_map<std::string, std::shared_ptr<const ScenarioResult>> by_key;
  std::vector<std::size_t> to_eval;  // index of each distinct key's first spec
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    if (by_key.find(keys[i]) != by_key.end()) {
      continue;
    }
    std::shared_ptr<const ScenarioResult> hit = cache_->lookup(keys[i]);
    if (!hit) {
      to_eval.push_back(i);
    }
    by_key.emplace(keys[i], std::move(hit));
  }

  std::vector<PreparedRun> misses;
  misses.reserve(to_eval.size());
  for (const std::size_t i : to_eval) {
    misses.push_back(std::move(prepared[i]));
  }
  std::vector<ScenarioResult> fresh = run_batch_prepared(std::move(misses));
  for (std::size_t j = 0; j < to_eval.size(); ++j) {
    auto shared = std::make_shared<const ScenarioResult>(std::move(fresh[j]));
    cache_->insert(keys[to_eval[j]], shared);
    by_key[keys[to_eval[j]]] = std::move(shared);
  }

  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results.push_back(*by_key[keys[i]]);
  }
  return results;
}

std::vector<ScenarioResult> Engine::run_batch_prepared(
    std::vector<PreparedRun> prepared_runs) const {
  enum class TaskKind { point, sample, whole };
  struct SpecJob {
    PreparedRun prepared;
    std::size_t suite_id = 0;  ///< into `suites` (point tasks only)
    PointPlan points;          ///< compare / sweep / grid
    McPlan mc;                 ///< montecarlo
    TaskKind kind = TaskKind::whole;
  };
  struct Task {
    std::size_t spec = 0;
    std::size_t index = 0;  ///< point / sample index; unused for whole
  };

  // Serial planning phase over the already-prepared specs: plan each
  // one's work items and deduplicate effective suites so workers can
  // share one memoised LifecycleModel across every spec using the same
  // suite.
  std::vector<SpecJob> jobs;
  jobs.reserve(prepared_runs.size());
  std::vector<core::ModelSuite> suites;
  std::vector<std::string> suite_keys;  // canonical JSON, parallel to `suites`
  std::vector<Task> tasks;
  for (std::size_t s = 0; s < prepared_runs.size(); ++s) {
    SpecJob job;
    job.prepared = std::move(prepared_runs[s]);
    const ScenarioSpec& spec = job.prepared.result.spec;
    switch (spec.kind) {
      case ScenarioKind::compare:
      case ScenarioKind::sweep:
      case ScenarioKind::grid: {
        job.kind = TaskKind::point;
        job.points = plan_points(spec);
        job.prepared.result.points.resize(job.points.total);
        const std::string key = core::to_json(job.prepared.suite).dump(0);
        std::size_t id = 0;
        while (id < suite_keys.size() && suite_keys[id] != key) {
          ++id;
        }
        if (id == suite_keys.size()) {
          suites.push_back(job.prepared.suite);
          suite_keys.push_back(key);
        }
        job.suite_id = id;
        for (std::size_t i = 0; i < job.points.total; ++i) {
          tasks.push_back(Task{.spec = s, .index = i});
        }
        break;
      }
      case ScenarioKind::montecarlo: {
        job.kind = TaskKind::sample;
        job.mc = plan_montecarlo(spec);
        job.prepared.result.uncertainty =
            make_mc_skeleton(spec, job.prepared.result.resolved_chips.size());
        for (std::size_t i = 0; i < static_cast<std::size_t>(spec.montecarlo.samples);
             ++i) {
          tasks.push_back(Task{.spec = s, .index = i});
        }
        break;
      }
      default:
        // Timeline / breakeven / node_dse / sensitivity run whole-spec on
        // one worker (they are single evaluations or internally small);
        // a serial engine keeps the pool flat.
        job.kind = TaskKind::whole;
        tasks.push_back(Task{.spec = s, .index = 0});
        break;
    }
    jobs.push_back(std::move(job));
  }

  // One pool over the flattened task list.  Worker state: one lazily
  // built LifecycleModel per distinct suite (the embodied-carbon memo is
  // per model, so specs sharing a suite share fab/package/EOL results).
  using WorkerModels = std::vector<std::optional<core::LifecycleModel>>;
  parallel_for_state(
      tasks.size(), threads_, [&suites] { return WorkerModels(suites.size()); },
      [&](WorkerModels& models, std::size_t t) {
        const Task& task = tasks[t];
        SpecJob& job = jobs[task.spec];
        ScenarioResult& result = job.prepared.result;
        switch (job.kind) {
          case TaskKind::point: {
            std::optional<core::LifecycleModel>& model = models[job.suite_id];
            if (!model) {
              model.emplace(suites[job.suite_id]);
            }
            evaluate_point(result.spec, job.points, result.resolved_chips, *model,
                           task.index, result.points[task.index]);
            return;
          }
          case TaskKind::sample:
            evaluate_mc_sample(result.spec, job.mc, job.prepared.suite,
                               result.resolved_chips, task.index, *result.uncertainty);
            return;
          case TaskKind::whole: {
            const Engine serial(EngineOptions{.threads = 1, .registry = registry_});
            result = serial.run(result.spec);
            return;
          }
        }
      });

  // Serial post phase: deterministic Monte-Carlo reductions.
  std::vector<ScenarioResult> results;
  results.reserve(jobs.size());
  for (SpecJob& job : jobs) {
    if (job.kind == TaskKind::sample) {
      reduce_montecarlo(*job.prepared.result.uncertainty);
    }
    results.push_back(std::move(job.prepared.result));
  }
  return results;
}

}  // namespace greenfpga::scenario
