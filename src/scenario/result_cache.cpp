/// \file result_cache.cpp
/// The sharded content-addressed LRU over immutable scenario results.

#include "scenario/result_cache.hpp"

#include <stdexcept>
#include <utility>

#include "io/hash.hpp"
#include "scenario/cache_store.hpp"
#include "scenario/engine.hpp"

namespace greenfpga::scenario {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  if (capacity == 0) {
    capacity = 1;
  }
  if (shards == 0) {
    shards = 1;
  }
  shard_capacity_ = (capacity + shards - 1) / shards;  // ceil: never 0
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return *shards_[io::fnv1a64(key) % shards_.size()];
}

std::shared_ptr<const ScenarioResult> ResultCache::lookup(const std::string& key) {
  Shard& shard = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // freshen
      return it->second->result;
    }
  }
  // Memory miss: consult the disk tier with no lock held -- store IO is
  // file IO and must never serialize the shard.
  if (store_ != nullptr) {
    if (std::shared_ptr<const ScenarioResult> loaded = store_->load(key)) {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      ++shard.hits;
      ++shard.disk_hits;
      insert_locked(shard, key, loaded);
      return loaded;
    }
  }
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.misses;
  return nullptr;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const ScenarioResult> result) {
  if (!result) {
    throw std::invalid_argument("ResultCache::insert: null result");
  }
  Shard& shard = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    insert_locked(shard, key, result);
  }
  if (store_ != nullptr) {
    store_->save(key, *result);  // best-effort; outside the lock
  }
}

void ResultCache::insert_locked(Shard& shard, const std::string& key,
                                std::shared_ptr<const ScenarioResult> result) {
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Same content key => same deterministic result; refresh recency only.
    it->second->result = std::move(result);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(result)});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->index.clear();
    shard->lru.clear();
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.capacity = shard_capacity_ * shards_.size();
  stats.shards = shards_.size();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.disk_hits += shard->disk_hits;
    stats.size += shard->lru.size();
  }
  return stats;
}

}  // namespace greenfpga::scenario
