/// \file result_cache.cpp
/// The content-addressed LRU over immutable scenario results.

#include "scenario/result_cache.hpp"

#include <stdexcept>
#include <utility>

#include "scenario/engine.hpp"

namespace greenfpga::scenario {

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const ScenarioResult> ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // freshen
  return it->second->result;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const ScenarioResult> result) {
  if (!result) {
    throw std::invalid_argument("ResultCache::insert: null result");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Same content key => same deterministic result; refresh recency only.
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void ResultCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  index_.clear();
  lru_.clear();
}

ResultCacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ResultCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.size = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace greenfpga::scenario
