/// \file result_io.cpp
/// Canonical result JSON (total, byte-identical round-trip).  The common
/// envelope -- spec and resolved platforms -- lives here; every kind
/// section is owned by its registry module, and both directions simply
/// iterate the registry (sections are presence-gated, and the sorted
/// canonical object makes emission order irrelevant to the bytes).

#include "scenario/result_io.hpp"

#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "scenario/kind_registry.hpp"

namespace greenfpga::scenario {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

/// check_known_keys over the registry-derived key set: the envelope keys
/// plus every module's result sections.  Runtime-built because the
/// registry owns the per-kind vocabulary.
void check_result_keys(const Json& json) {
  for (const auto& [key, value] : json.as_object()) {
    bool known = key == "spec" || key == "platforms";
    for (const KindModule* module : all_kind_modules()) {
      for (const std::string_view candidate : module->result_keys) {
        if (key == candidate) {
          known = true;
          break;
        }
      }
      if (known) {
        break;
      }
    }
    if (!known) {
      throw core::ConfigError("unknown key \"" + key + "\" in scenario result");
    }
  }
}

}  // namespace

Json result_to_json(const ScenarioResult& result) {
  Json out = Json::object();
  out["spec"] = spec_to_json(result.spec);
  Json platforms = Json::array();
  for (std::size_t i = 0; i < result.platform_names.size(); ++i) {
    Json entry = Json::object();
    entry["name"] = result.platform_names[i];
    entry["chip"] = core::to_json(result.resolved_chips[i]);
    platforms.push_back(std::move(entry));
  }
  out["platforms"] = std::move(platforms);
  for (const KindModule* module : all_kind_modules()) {
    if (module->result_to_json != nullptr) {
      module->result_to_json(result, out);
    }
  }
  return out;
}

ScenarioResult result_from_json(const Json& json) {
  check_result_keys(json);
  ScenarioResult result;
  result.spec = spec_from_json(json.at("spec"));
  for (const Json& entry : json.at("platforms").as_array()) {
    core::check_known_keys(entry, "result platform", {"name", "chip"});
    result.platform_names.push_back(entry.at("name").as_string());
    result.resolved_chips.push_back(core::chip_from_json(entry.at("chip")));
  }
  for (const KindModule* module : all_kind_modules()) {
    if (module->result_from_json != nullptr) {
      module->result_from_json(json, result);
    }
  }
  return result;
}

bool operator==(const ScenarioResult& a, const ScenarioResult& b) {
  // Compare the *serialized* canonical forms, not the Json trees: tree
  // equality compares doubles with ==, under which NaN != NaN, so a
  // result carrying a NaN cell (e.g. a 0/0 ratio) would never equal
  // itself.  The dump encodes non-finite values as text sentinels, making
  // the canonical-bytes identity total.
  return result_to_json(a).dump(0) == result_to_json(b).dump(0);
}

// -- frames ---------------------------------------------------------------------

std::vector<report::ResultFrame> to_frames(const ScenarioResult& result) {
  std::vector<ResultFrame> frames;
  const KindModule& module = kind_module(result.spec.kind);
  if (module.to_frames != nullptr) {
    module.to_frames(result, frames);
  }
  return frames;
}

report::ResultFrame mc_samples_frame(const ScenarioResult& result) {
  if (!result.uncertainty) {
    throw std::logic_error("mc_samples_frame: result has no uncertainty payload");
  }
  const MonteCarloUq& uq = *result.uncertainty;
  ResultFrame frame;
  frame.name = "samples";
  frame.columns.push_back(Column{.name = "sample", .unit = "", .precision = 6});
  for (const std::string& platform : result.platform_names) {
    frame.columns.push_back(Column{.name = platform + "_total_kg", .unit = "",
                                   .precision = 6});
  }
  for (std::size_t k = 1; k < result.platform_names.size(); ++k) {
    frame.columns.push_back(Column{.name = result.platform_names[k] + "_over_" +
                                               result.platform_names[0] + "_ratio",
                                   .unit = "", .precision = 6});
  }
  std::vector<std::vector<double>> ratio_columns;
  for (std::size_t k = 1; k < uq.sample_totals_kg.size(); ++k) {
    ratio_columns.push_back(uq.ratio_samples(k));
  }
  const std::size_t samples = uq.sample_totals_kg.front().size();
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<Cell> row{Cell(static_cast<double>(i))};
    for (const std::vector<double>& totals : uq.sample_totals_kg) {
      row.emplace_back(totals[i]);
    }
    for (const std::vector<double>& ratios : ratio_columns) {
      row.emplace_back(ratios[i]);
    }
    frame.add_row(std::move(row));
  }
  return frame;
}

}  // namespace greenfpga::scenario
