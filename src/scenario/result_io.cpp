/// \file result_io.cpp
/// Canonical result JSON (total, byte-identical round-trip) and the
/// per-kind frame lowerings.

#include "scenario/result_io.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "report/figure_writer.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

constexpr double kKgPerTonne = 1000.0;

Json doubles_to_json(const std::vector<double>& values) {
  Json out = Json::array();
  for (const double v : values) {
    out.push_back(v);
  }
  return out;
}

std::vector<double> doubles_from_json(const Json& json) {
  std::vector<double> out;
  out.reserve(json.size());
  for (const Json& v : json.as_array()) {
    // Total read: the canonical writer encodes non-finite cells as
    // string sentinels, and result payloads may legitimately carry them
    // (a zero-baseline ratio, an unbounded solve).
    out.push_back(v.as_number_total());
  }
  return out;
}

Json stat_to_json(const UqStat& stat) {
  Json out = Json::object();
  out["mean"] = stat.mean;
  out["stddev"] = stat.stddev;
  out["percentile_values"] = doubles_to_json(stat.percentile_values);
  return out;
}

UqStat stat_from_json(const Json& json) {
  UqStat stat;
  stat.mean = json.at("mean").as_number_total();
  stat.stddev = json.at("stddev").as_number_total();
  stat.percentile_values = doubles_from_json(json.at("percentile_values"));
  return stat;
}

/// Ratio column label of platform `index` over the baseline.
std::string ratio_label(const ScenarioResult& result, std::size_t index) {
  return result.platform_names[index] + ":" + result.platform_names[0];
}

/// Shared frame for the point-evaluating kinds: one row per point, axis
/// coordinates first, then per-platform totals, then baseline ratios.
ResultFrame points_frame(const ScenarioResult& result, const std::string& name) {
  ResultFrame frame;
  frame.name = name;
  for (const AxisSpec& axis : result.spec.axes) {
    frame.columns.push_back(Column{.name = axis.label(), .unit = "", .precision = 4});
  }
  for (const std::string& platform : result.platform_names) {
    frame.columns.push_back(Column{.name = platform, .unit = "t CO2e", .precision = 5});
  }
  for (std::size_t i = 1; i < result.platform_names.size(); ++i) {
    frame.columns.push_back(Column{.name = ratio_label(result, i), .unit = "",
                                   .precision = 4});
  }
  for (const EvalPoint& point : result.points) {
    std::vector<Cell> row;
    row.reserve(frame.columns.size());
    for (const double c : point.coords) {
      row.emplace_back(c);
    }
    for (const core::PlatformCfp& platform : point.platforms) {
      row.emplace_back(platform.total.total().in(units::unit::t_co2e));
    }
    for (std::size_t i = 1; i < point.platforms.size(); ++i) {
      row.emplace_back(point.ratio(i));
    }
    frame.add_row(std::move(row));
  }
  return frame;
}

/// Breakdown-component frame of a compare result: the shared
/// `report::breakdown_frame` layout (one row per platform, one component
/// column each) plus a baseline-ratio column, so compare and `industry`
/// speak identical column names.
ResultFrame compare_frame(const ScenarioResult& result) {
  const EvalPoint& point = result.points.front();
  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  rows.reserve(point.platforms.size());
  for (std::size_t i = 0; i < point.platforms.size(); ++i) {
    rows.emplace_back(result.platform_names[i], point.platforms[i].total);
  }
  ResultFrame frame = report::breakdown_frame("platforms", rows);
  frame.columns.push_back(Column{.name = "vs " + result.platform_names[0], .unit = "",
                                 .precision = 4});
  for (std::size_t i = 0; i < frame.rows.size(); ++i) {
    frame.rows[i].emplace_back(point.ratio(i));
  }
  for (std::size_t i = 1; i < result.platform_names.size(); ++i) {
    frame.set_meta(ratio_label(result, i) + " ratio",
                   units::format_significant(point.ratio(i), 4));
  }
  return frame;
}

ResultFrame sweep_frame(const ScenarioResult& result) {
  ResultFrame frame = points_frame(result, "sweep");
  if (result.platform_index(device::ChipKind::asic) &&
      result.platform_index(device::ChipKind::fpga) &&
      result.platform_names.size() == 2) {
    frame.set_meta("crossovers", report::crossover_summary(result.sweep_series()));
  }
  return frame;
}

ResultFrame grid_frame(const ScenarioResult& result) {
  ResultFrame frame = points_frame(result, "grid");
  if (result.platform_index(device::ChipKind::asic) &&
      result.platform_index(device::ChipKind::fpga) &&
      result.platform_names.size() == 2) {
    const Heatmap map = result.heatmap();
    frame.set_meta("ratio range",
                   "[" + units::format_significant(map.min_ratio(), 4) + ", " +
                       units::format_significant(map.max_ratio(), 4) + "]");
    frame.set_meta("unity-contour points", std::to_string(map.unity_contour().size()));
  }
  return frame;
}

ResultFrame timeline_frame(const ScenarioResult& result) {
  const TimelineSeries& series = *result.timeline;
  ResultFrame frame;
  frame.name = "timeline";
  frame.columns = {Column{.name = "time", .unit = "years", .precision = 4},
                   Column{.name = "ASIC cumulative", .unit = "kg CO2e", .precision = 5},
                   Column{.name = "FPGA cumulative", .unit = "kg CO2e", .precision = 5}};
  for (std::size_t i = 0; i < series.time_years.size(); ++i) {
    frame.add_row({Cell(series.time_years[i]), Cell(series.asic_cumulative_kg[i]),
                   Cell(series.fpga_cumulative_kg[i])});
  }
  frame.set_meta("horizon",
                 units::format_significant(series.time_years.back(), 4) + " years");
  frame.set_meta("FPGA fleet purchases", std::to_string(series.fpga_purchase_years.size()));
  frame.set_meta(
      "final cumulative",
      "ASIC " +
          units::format_significant(series.asic_cumulative_kg.back() / kKgPerTonne, 5) +
          " t CO2e, FPGA " +
          units::format_significant(series.fpga_cumulative_kg.back() / kKgPerTonne, 5) +
          " t CO2e");
  std::string crossovers;
  for (const Crossover& crossover : series.crossovers()) {
    crossovers += (crossovers.empty() ? "" : "; ") + to_string(crossover.kind) + " at " +
                  units::format_significant(crossover.x, 4) + " y";
  }
  frame.set_meta("crossovers", crossovers.empty() ? "none" : crossovers);
  return frame;
}

ResultFrame nodes_frame(const ScenarioResult& result) {
  ResultFrame frame;
  frame.name = "nodes";
  frame.columns = {Column{.name = "rank", .unit = "", .precision = 4},
                   Column{.name = "node", .unit = "", .precision = 4},
                   Column{.name = "die area", .unit = "mm^2", .precision = 4},
                   Column{.name = "peak power", .unit = "W", .precision = 4},
                   Column{.name = "total", .unit = "t CO2e", .precision = 5},
                   Column{.name = "vs best", .unit = "", .precision = 4}};
  double rank = 1.0;
  for (const NodeCandidate& candidate : result.candidates) {
    frame.add_row({Cell(rank), Cell(tech::to_string(candidate.chip.node)),
                   Cell(candidate.chip.die_area.in(units::unit::mm2)),
                   Cell(candidate.chip.peak_power.in(units::unit::w)),
                   Cell(candidate.total().in(units::unit::t_co2e)),
                   Cell(candidate.total_vs_best)});
    rank += 1.0;
  }
  return frame;
}

ResultFrame breakeven_frame(const ScenarioResult& result) {
  const BreakevenReport& report = *result.breakeven;
  ResultFrame frame;
  frame.name = "breakeven";
  frame.columns = {Column{.name = "variable", .unit = "", .precision = 4},
                   Column{.name = "requested", .unit = "", .precision = 4},
                   Column{.name = "breakeven", .unit = "", .precision = 4}};
  const auto row = [&frame](const char* variable, bool requested,
                            const std::optional<double>& value) {
    frame.add_row({Cell(std::string(variable)),
                   Cell(std::string(requested ? "yes" : "no")),
                   value ? Cell(*value) : Cell(nullptr)});
  };
  row("N_app", result.spec.breakeven.solve_app_count, report.app_count);
  row("T_i [years]", result.spec.breakeven.solve_lifetime, report.lifetime_years);
  row("N_vol [units]", result.spec.breakeven.solve_volume, report.volume);
  return frame;
}

ResultFrame tornado_frame(const ScenarioResult& result) {
  ResultFrame frame;
  frame.name = "tornado";
  frame.columns = {Column{.name = "parameter", .unit = "", .precision = 4},
                   Column{.name = "ratio at low", .unit = "", .precision = 4},
                   Column{.name = "ratio at high", .unit = "", .precision = 4},
                   Column{.name = "swing", .unit = "", .precision = 4}};
  for (const TornadoEntry& entry : result.tornado) {
    frame.add_row({Cell(entry.name), Cell(entry.ratio_at_low), Cell(entry.ratio_at_high),
                   Cell(entry.swing())});
  }
  return frame;
}

ResultFrame sensitivity_mc_frame(const ScenarioResult& result) {
  const MonteCarloResult& mc = *result.monte_carlo;
  ResultFrame frame;
  frame.name = "montecarlo_summary";
  frame.columns = {Column{.name = "samples", .unit = "", .precision = 6},
                   Column{.name = "mean ratio", .unit = "", .precision = 4},
                   Column{.name = "stddev", .unit = "", .precision = 4},
                   Column{.name = "p05", .unit = "", .precision = 4},
                   Column{.name = "p50", .unit = "", .precision = 4},
                   Column{.name = "p95", .unit = "", .precision = 4},
                   Column{.name = "FPGA win fraction", .unit = "", .precision = 4}};
  frame.add_row({Cell(static_cast<double>(mc.samples)), Cell(mc.mean), Cell(mc.stddev),
                 Cell(mc.p05), Cell(mc.p50), Cell(mc.p95), Cell(mc.fpga_win_fraction)});
  return frame;
}

ResultFrame uncertainty_frame(const ScenarioResult& result) {
  const MonteCarloUq& uq = *result.uncertainty;
  ResultFrame frame;
  frame.name = "uncertainty";
  frame.columns = {Column{.name = "metric", .unit = "", .precision = 5},
                   Column{.name = "mean", .unit = "", .precision = 5},
                   Column{.name = "stddev", .unit = "", .precision = 5}};
  for (const double p : uq.percentiles) {
    frame.columns.push_back(Column{.name = "p" + units::format_significant(p, 4),
                                   .unit = "", .precision = 5});
  }
  const auto add_stat = [&frame](const std::string& metric, const UqStat& stat,
                                 double scale) {
    std::vector<Cell> row{Cell(metric), Cell(stat.mean * scale),
                          Cell(stat.stddev * scale)};
    for (const double v : stat.percentile_values) {
      row.emplace_back(v * scale);
    }
    frame.add_row(std::move(row));
  };
  for (std::size_t p = 0; p < uq.platform_total.size(); ++p) {
    add_stat(result.platform_names[p] + " [t CO2e]", uq.platform_total[p],
             1.0 / kKgPerTonne);
  }
  for (std::size_t k = 0; k < uq.ratio.size(); ++k) {
    add_stat(ratio_label(result, k + 1) + " ratio", uq.ratio[k], 1.0);
  }
  frame.set_meta("Monte-Carlo",
                 std::to_string(uq.samples) + " samples, seed " +
                     std::to_string(result.spec.montecarlo.seed) + ", " +
                     std::to_string(result.spec.montecarlo.distributions.size()) +
                     " uncertain parameter(s)");
  for (std::size_t k = 0; k < uq.win_fraction.size(); ++k) {
    frame.set_meta(ratio_label(result, k + 1) + " verdict",
                   result.platform_names[k + 1] + " beats " + result.platform_names[0] +
                       " in " +
                       units::format_significant(100.0 * uq.win_fraction[k], 4) +
                       " % of samples");
  }
  return frame;
}

/// One row per frontier cell: coordinates, per-platform objectives, the
/// winner and its margin, plus the Monte-Carlo win confidence.
ResultFrame frontier_cells_frame(const ScenarioResult& result) {
  const dse::FrontierResult& frontier = *result.frontier;
  ResultFrame frame;
  frame.name = "frontier";
  for (const dse::FrontierAxisSpec& axis : frontier.spec.axes) {
    frame.columns.push_back(Column{.name = axis.label(), .unit = "", .precision = 4});
  }
  for (const std::string& platform : result.platform_names) {
    frame.columns.push_back(Column{.name = platform, .unit = "t CO2e", .precision = 5});
  }
  frame.columns.push_back(Column{.name = "winner", .unit = "", .precision = 4});
  frame.columns.push_back(Column{.name = "margin", .unit = "", .precision = 4});
  frame.columns.push_back(Column{.name = "confidence", .unit = "", .precision = 4});
  for (const dse::FrontierCell& cell : frontier.cells) {
    std::vector<Cell> row;
    row.reserve(frame.columns.size());
    for (const double c : cell.coords) {
      row.emplace_back(c);
    }
    for (const double objective : cell.objective_kg) {
      row.emplace_back(objective / kKgPerTonne);
    }
    row.emplace_back(cell.winner >= 0
                         ? result.platform_names[static_cast<std::size_t>(cell.winner)]
                         : std::string("-"));
    row.emplace_back(cell.margin);
    row.emplace_back(cell.confidence);
    frame.add_row(std::move(row));
  }
  frame.set_meta("objective", to_string(frontier.spec.objective));
  if (frontier.confidence_samples > 0) {
    frame.set_meta("confidence",
                   std::to_string(frontier.confidence_samples) + " samples, seed " +
                       std::to_string(frontier.spec.seed));
  }
  return frame;
}

/// One row per platform: its win count and overall win fraction.
ResultFrame frontier_summary_frame(const ScenarioResult& result) {
  const dse::FrontierResult& frontier = *result.frontier;
  ResultFrame frame;
  frame.name = "frontier_summary";
  frame.columns = {Column{.name = "platform", .unit = "", .precision = 4},
                   Column{.name = "cells won", .unit = "", .precision = 6},
                   Column{.name = "win fraction", .unit = "", .precision = 4}};
  for (std::size_t p = 0; p < result.platform_names.size(); ++p) {
    frame.add_row({Cell(result.platform_names[p]),
                   Cell(static_cast<double>(frontier.win_counts[p])),
                   Cell(frontier.win_fraction[p])});
  }
  if (frontier.infeasible_cells > 0) {
    frame.set_meta("infeasible cells", std::to_string(frontier.infeasible_cells));
  }
  return frame;
}

/// One row per breakeven boundary point (2-axis frontiers only).
ResultFrame frontier_boundaries_frame(const ScenarioResult& result) {
  const dse::FrontierResult& frontier = *result.frontier;
  ResultFrame frame;
  frame.name = "frontier_boundaries";
  frame.columns = {Column{.name = "between", .unit = "", .precision = 4},
                   Column{.name = frontier.spec.axes[0].label(), .unit = "",
                          .precision = 5},
                   Column{.name = frontier.spec.axes[1].label(), .unit = "",
                          .precision = 5}};
  for (const dse::FrontierBoundary& boundary : frontier.boundaries) {
    const std::string pair =
        result.platform_names[static_cast<std::size_t>(boundary.platform_a)] + "|" +
        result.platform_names[static_cast<std::size_t>(boundary.platform_b)];
    for (const std::array<double, 2>& point : boundary.points) {
      frame.add_row({Cell(pair), Cell(point[0]), Cell(point[1])});
    }
  }
  return frame;
}

}  // namespace

// -- JSON -----------------------------------------------------------------------

Json result_to_json(const ScenarioResult& result) {
  Json out = Json::object();
  out["spec"] = spec_to_json(result.spec);
  Json platforms = Json::array();
  for (std::size_t i = 0; i < result.platform_names.size(); ++i) {
    Json entry = Json::object();
    entry["name"] = result.platform_names[i];
    entry["chip"] = core::to_json(result.resolved_chips[i]);
    platforms.push_back(std::move(entry));
  }
  out["platforms"] = std::move(platforms);
  if (!result.points.empty()) {
    Json points = Json::array();
    for (const EvalPoint& point : result.points) {
      Json entry = Json::object();
      entry["coords"] = doubles_to_json(point.coords);
      Json evaluated = Json::array();
      for (const core::PlatformCfp& platform : point.platforms) {
        evaluated.push_back(core::to_json(platform));
      }
      entry["platforms"] = std::move(evaluated);
      points.push_back(std::move(entry));
    }
    out["points"] = std::move(points);
  }
  if (result.timeline) {
    Json timeline = Json::object();
    timeline["time_years"] = doubles_to_json(result.timeline->time_years);
    timeline["asic_cumulative_kg"] = doubles_to_json(result.timeline->asic_cumulative_kg);
    timeline["fpga_cumulative_kg"] = doubles_to_json(result.timeline->fpga_cumulative_kg);
    timeline["fpga_purchase_years"] =
        doubles_to_json(result.timeline->fpga_purchase_years);
    out["timeline"] = std::move(timeline);
  }
  if (!result.candidates.empty()) {
    Json candidates = Json::array();
    for (const NodeCandidate& candidate : result.candidates) {
      Json entry = Json::object();
      entry["chip"] = core::to_json(candidate.chip);
      entry["lifecycle"] = core::to_json(candidate.lifecycle);
      entry["total_vs_best"] = candidate.total_vs_best;
      candidates.push_back(std::move(entry));
    }
    out["candidates"] = std::move(candidates);
  }
  if (!result.tornado.empty()) {
    Json tornado = Json::array();
    for (const TornadoEntry& entry : result.tornado) {
      Json row = Json::object();
      row["name"] = entry.name;
      row["ratio_at_low"] = entry.ratio_at_low;
      row["ratio_at_high"] = entry.ratio_at_high;
      row["swing"] = entry.swing();
      tornado.push_back(std::move(row));
    }
    out["tornado"] = std::move(tornado);
  }
  if (result.monte_carlo) {
    Json mc = Json::object();
    mc["samples"] = result.monte_carlo->samples;
    mc["mean"] = result.monte_carlo->mean;
    mc["stddev"] = result.monte_carlo->stddev;
    mc["p05"] = result.monte_carlo->p05;
    mc["p50"] = result.monte_carlo->p50;
    mc["p95"] = result.monte_carlo->p95;
    mc["fpga_win_fraction"] = result.monte_carlo->fpga_win_fraction;
    out["monte_carlo"] = std::move(mc);
  }
  if (result.uncertainty) {
    const MonteCarloUq& uq = *result.uncertainty;
    Json mc = Json::object();
    mc["samples"] = uq.samples;
    mc["percentiles"] = doubles_to_json(uq.percentiles);
    Json totals = Json::array();
    for (const UqStat& stat : uq.platform_total) {
      totals.push_back(stat_to_json(stat));
    }
    mc["platform_total"] = std::move(totals);
    Json ratios = Json::array();
    for (const UqStat& stat : uq.ratio) {
      ratios.push_back(stat_to_json(stat));
    }
    mc["ratio"] = std::move(ratios);
    mc["win_fraction"] = doubles_to_json(uq.win_fraction);
    Json samples = Json::array();
    for (const std::vector<double>& platform : uq.sample_totals_kg) {
      samples.push_back(doubles_to_json(platform));
    }
    mc["sample_totals_kg"] = std::move(samples);
    out["uncertainty"] = std::move(mc);
  }
  if (result.frontier) {
    // The payload's spec and platform names are the result's own (the
    // engine builds the problem from them), so only the search output is
    // serialized; the reader reconstructs the rest.
    const dse::FrontierResult& fr = *result.frontier;
    Json frontier = Json::object();
    Json axes = Json::array();
    for (const std::vector<double>& values : fr.axis_values) {
      axes.push_back(doubles_to_json(values));
    }
    frontier["axis_values"] = std::move(axes);
    Json cells = Json::array();
    for (const dse::FrontierCell& cell : fr.cells) {
      Json entry = Json::object();
      entry["coords"] = doubles_to_json(cell.coords);
      entry["objective_kg"] = doubles_to_json(cell.objective_kg);
      entry["winner"] = cell.winner;
      entry["margin"] = cell.margin;
      entry["confidence"] = cell.confidence;
      cells.push_back(std::move(entry));
    }
    frontier["cells"] = std::move(cells);
    Json wins = Json::array();
    for (const std::size_t count : fr.win_counts) {
      wins.push_back(static_cast<int>(count));
    }
    frontier["win_counts"] = std::move(wins);
    frontier["win_fraction"] = doubles_to_json(fr.win_fraction);
    frontier["infeasible_cells"] = static_cast<int>(fr.infeasible_cells);
    Json slices = Json::array();
    for (const dse::FrontierSlice& slice : fr.slices) {
      Json entry = Json::object();
      entry["axis"] = static_cast<int>(slice.axis);
      entry["value"] = slice.value;
      entry["win_fraction"] = doubles_to_json(slice.win_fraction);
      slices.push_back(std::move(entry));
    }
    frontier["slices"] = std::move(slices);
    Json boundaries = Json::array();
    for (const dse::FrontierBoundary& boundary : fr.boundaries) {
      Json entry = Json::object();
      entry["platform_a"] = boundary.platform_a;
      entry["platform_b"] = boundary.platform_b;
      Json points = Json::array();
      for (const std::array<double, 2>& point : boundary.points) {
        Json pt = Json::array();
        pt.push_back(point[0]);
        pt.push_back(point[1]);
        points.push_back(std::move(pt));
      }
      entry["points"] = std::move(points);
      boundaries.push_back(std::move(entry));
    }
    frontier["boundaries"] = std::move(boundaries);
    frontier["confidence_samples"] = fr.confidence_samples;
    out["frontier"] = std::move(frontier);
  }
  if (result.breakeven) {
    // Requested solves always emit their key (null = no crossover);
    // unrequested solves omit it, so consumers can tell the states apart.
    Json breakeven = Json::object();
    const auto emit = [&breakeven](bool requested, const char* key,
                                   const std::optional<double>& value) {
      if (requested) {
        breakeven[key] = value ? Json(*value) : Json(nullptr);
      }
    };
    emit(result.spec.breakeven.solve_app_count, "app_count", result.breakeven->app_count);
    emit(result.spec.breakeven.solve_lifetime, "lifetime_years",
         result.breakeven->lifetime_years);
    emit(result.spec.breakeven.solve_volume, "volume", result.breakeven->volume);
    out["breakeven"] = std::move(breakeven);
  }
  return out;
}

ScenarioResult result_from_json(const Json& json) {
  core::check_known_keys(json, "scenario result",
                         {"spec", "platforms", "points", "timeline", "candidates",
                          "tornado", "monte_carlo", "uncertainty", "frontier",
                          "breakeven"});
  ScenarioResult result;
  result.spec = spec_from_json(json.at("spec"));
  for (const Json& entry : json.at("platforms").as_array()) {
    core::check_known_keys(entry, "result platform", {"name", "chip"});
    result.platform_names.push_back(entry.at("name").as_string());
    result.resolved_chips.push_back(core::chip_from_json(entry.at("chip")));
  }
  if (json.contains("points")) {
    for (const Json& entry : json.at("points").as_array()) {
      core::check_known_keys(entry, "result point", {"coords", "platforms"});
      EvalPoint point;
      point.coords = doubles_from_json(entry.at("coords"));
      for (const Json& platform : entry.at("platforms").as_array()) {
        point.platforms.push_back(core::platform_cfp_from_json(platform));
      }
      result.points.push_back(std::move(point));
    }
  }
  if (json.contains("timeline")) {
    const Json& timeline = json.at("timeline");
    core::check_known_keys(timeline, "result timeline",
                           {"time_years", "asic_cumulative_kg", "fpga_cumulative_kg",
                            "fpga_purchase_years"});
    TimelineSeries series;
    series.time_years = doubles_from_json(timeline.at("time_years"));
    series.asic_cumulative_kg = doubles_from_json(timeline.at("asic_cumulative_kg"));
    series.fpga_cumulative_kg = doubles_from_json(timeline.at("fpga_cumulative_kg"));
    series.fpga_purchase_years = doubles_from_json(timeline.at("fpga_purchase_years"));
    result.timeline = std::move(series);
  }
  if (json.contains("candidates")) {
    for (const Json& entry : json.at("candidates").as_array()) {
      core::check_known_keys(entry, "result candidate",
                             {"chip", "lifecycle", "total_vs_best"});
      NodeCandidate candidate;
      candidate.chip = core::chip_from_json(entry.at("chip"));
      candidate.lifecycle = core::breakdown_from_json(entry.at("lifecycle"));
      candidate.total_vs_best = entry.at("total_vs_best").as_number_total();
      result.candidates.push_back(std::move(candidate));
    }
  }
  if (json.contains("tornado")) {
    for (const Json& entry : json.at("tornado").as_array()) {
      core::check_known_keys(entry, "result tornado entry",
                             {"name", "ratio_at_low", "ratio_at_high", "swing"});
      TornadoEntry tornado;
      tornado.name = entry.at("name").as_string();
      tornado.ratio_at_low = entry.at("ratio_at_low").as_number_total();
      tornado.ratio_at_high = entry.at("ratio_at_high").as_number_total();
      result.tornado.push_back(std::move(tornado));
    }
  }
  if (json.contains("monte_carlo")) {
    const Json& mc = json.at("monte_carlo");
    core::check_known_keys(mc, "result monte_carlo",
                           {"samples", "mean", "stddev", "p05", "p50", "p95",
                            "fpga_win_fraction"});
    MonteCarloResult summary;
    summary.samples = static_cast<int>(mc.at("samples").as_int());
    summary.mean = mc.at("mean").as_number_total();
    summary.stddev = mc.at("stddev").as_number_total();
    summary.p05 = mc.at("p05").as_number_total();
    summary.p50 = mc.at("p50").as_number_total();
    summary.p95 = mc.at("p95").as_number_total();
    summary.fpga_win_fraction = mc.at("fpga_win_fraction").as_number_total();
    result.monte_carlo = summary;
  }
  if (json.contains("uncertainty")) {
    const Json& mc = json.at("uncertainty");
    core::check_known_keys(mc, "result uncertainty",
                           {"samples", "percentiles", "platform_total", "ratio",
                            "win_fraction", "sample_totals_kg"});
    MonteCarloUq uq;
    uq.samples = static_cast<int>(mc.at("samples").as_int());
    uq.percentiles = doubles_from_json(mc.at("percentiles"));
    for (const Json& stat : mc.at("platform_total").as_array()) {
      uq.platform_total.push_back(stat_from_json(stat));
    }
    for (const Json& stat : mc.at("ratio").as_array()) {
      uq.ratio.push_back(stat_from_json(stat));
    }
    uq.win_fraction = doubles_from_json(mc.at("win_fraction"));
    for (const Json& platform : mc.at("sample_totals_kg").as_array()) {
      uq.sample_totals_kg.push_back(doubles_from_json(platform));
    }
    result.uncertainty = std::move(uq);
  }
  if (json.contains("frontier")) {
    const Json& frontier = json.at("frontier");
    core::check_known_keys(frontier, "result frontier",
                           {"axis_values", "cells", "win_counts", "win_fraction",
                            "infeasible_cells", "slices", "boundaries",
                            "confidence_samples"});
    dse::FrontierResult fr;
    fr.spec = result.spec.frontier;
    fr.platform_names = result.platform_names;
    for (const Json& values : frontier.at("axis_values").as_array()) {
      fr.axis_values.push_back(doubles_from_json(values));
    }
    for (const Json& entry : frontier.at("cells").as_array()) {
      core::check_known_keys(entry, "result frontier cell",
                             {"coords", "objective_kg", "winner", "margin",
                              "confidence"});
      dse::FrontierCell cell;
      cell.coords = doubles_from_json(entry.at("coords"));
      cell.objective_kg = doubles_from_json(entry.at("objective_kg"));
      cell.winner = static_cast<int>(entry.at("winner").as_int());
      cell.margin = entry.at("margin").as_number_total();
      cell.confidence = entry.at("confidence").as_number_total();
      fr.cells.push_back(std::move(cell));
    }
    for (const Json& count : frontier.at("win_counts").as_array()) {
      fr.win_counts.push_back(static_cast<std::size_t>(count.as_int()));
    }
    fr.win_fraction = doubles_from_json(frontier.at("win_fraction"));
    fr.infeasible_cells =
        static_cast<std::size_t>(frontier.at("infeasible_cells").as_int());
    for (const Json& entry : frontier.at("slices").as_array()) {
      core::check_known_keys(entry, "result frontier slice",
                             {"axis", "value", "win_fraction"});
      dse::FrontierSlice slice;
      slice.axis = static_cast<std::size_t>(entry.at("axis").as_int());
      slice.value = entry.at("value").as_number_total();
      slice.win_fraction = doubles_from_json(entry.at("win_fraction"));
      fr.slices.push_back(std::move(slice));
    }
    for (const Json& entry : frontier.at("boundaries").as_array()) {
      core::check_known_keys(entry, "result frontier boundary",
                             {"platform_a", "platform_b", "points"});
      dse::FrontierBoundary boundary;
      boundary.platform_a = static_cast<int>(entry.at("platform_a").as_int());
      boundary.platform_b = static_cast<int>(entry.at("platform_b").as_int());
      for (const Json& point : entry.at("points").as_array()) {
        const std::vector<double> xy = doubles_from_json(point);
        if (xy.size() != 2) {
          throw std::invalid_argument(
              "result frontier boundary point needs exactly two coordinates");
        }
        boundary.points.push_back({xy[0], xy[1]});
      }
      fr.boundaries.push_back(std::move(boundary));
    }
    fr.confidence_samples =
        static_cast<int>(frontier.at("confidence_samples").as_int());
    result.frontier = std::move(fr);
  }
  if (json.contains("breakeven")) {
    const Json& breakeven = json.at("breakeven");
    core::check_known_keys(breakeven, "result breakeven",
                           {"app_count", "lifetime_years", "volume"});
    BreakevenReport report;
    const auto read = [&breakeven](const char* key) -> std::optional<double> {
      if (!breakeven.contains(key) || breakeven.at(key).is_null()) {
        return std::nullopt;
      }
      return breakeven.at(key).as_number_total();
    };
    report.app_count = read("app_count");
    report.lifetime_years = read("lifetime_years");
    report.volume = read("volume");
    result.breakeven = report;
  }
  return result;
}

bool operator==(const ScenarioResult& a, const ScenarioResult& b) {
  // Compare the *serialized* canonical forms, not the Json trees: tree
  // equality compares doubles with ==, under which NaN != NaN, so a
  // result carrying a NaN cell (e.g. a 0/0 ratio) would never equal
  // itself.  The dump encodes non-finite values as text sentinels, making
  // the canonical-bytes identity total.
  return result_to_json(a).dump(0) == result_to_json(b).dump(0);
}

// -- frames ---------------------------------------------------------------------

std::vector<report::ResultFrame> to_frames(const ScenarioResult& result) {
  std::vector<ResultFrame> frames;
  switch (result.spec.kind) {
    case ScenarioKind::compare:
      frames.push_back(compare_frame(result));
      break;
    case ScenarioKind::sweep:
      frames.push_back(sweep_frame(result));
      break;
    case ScenarioKind::grid:
      frames.push_back(grid_frame(result));
      break;
    case ScenarioKind::timeline:
      frames.push_back(timeline_frame(result));
      break;
    case ScenarioKind::node_dse:
      frames.push_back(nodes_frame(result));
      break;
    case ScenarioKind::breakeven:
      frames.push_back(breakeven_frame(result));
      break;
    case ScenarioKind::sensitivity:
      if (!result.tornado.empty()) {
        frames.push_back(tornado_frame(result));
      }
      if (result.monte_carlo) {
        frames.push_back(sensitivity_mc_frame(result));
      }
      break;
    case ScenarioKind::montecarlo:
      frames.push_back(uncertainty_frame(result));
      break;
    case ScenarioKind::frontier:
      frames.push_back(frontier_cells_frame(result));
      frames.push_back(frontier_summary_frame(result));
      if (!result.frontier->boundaries.empty()) {
        frames.push_back(frontier_boundaries_frame(result));
      }
      break;
  }
  return frames;
}

report::ResultFrame mc_samples_frame(const ScenarioResult& result) {
  if (!result.uncertainty) {
    throw std::logic_error("mc_samples_frame: result has no uncertainty payload");
  }
  const MonteCarloUq& uq = *result.uncertainty;
  ResultFrame frame;
  frame.name = "samples";
  frame.columns.push_back(Column{.name = "sample", .unit = "", .precision = 6});
  for (const std::string& platform : result.platform_names) {
    frame.columns.push_back(Column{.name = platform + "_total_kg", .unit = "",
                                   .precision = 6});
  }
  for (std::size_t k = 1; k < result.platform_names.size(); ++k) {
    frame.columns.push_back(Column{.name = result.platform_names[k] + "_over_" +
                                               result.platform_names[0] + "_ratio",
                                   .unit = "", .precision = 6});
  }
  std::vector<std::vector<double>> ratio_columns;
  for (std::size_t k = 1; k < uq.sample_totals_kg.size(); ++k) {
    ratio_columns.push_back(uq.ratio_samples(k));
  }
  const std::size_t samples = uq.sample_totals_kg.front().size();
  for (std::size_t i = 0; i < samples; ++i) {
    std::vector<Cell> row{Cell(static_cast<double>(i))};
    for (const std::vector<double>& totals : uq.sample_totals_kg) {
      row.emplace_back(totals[i]);
    }
    for (const std::vector<double>& ratios : ratio_columns) {
      row.emplace_back(ratios[i]);
    }
    frame.add_row(std::move(row));
  }
  return frame;
}

}  // namespace greenfpga::scenario
