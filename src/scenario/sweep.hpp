#ifndef GREENFPGA_SCENARIO_SWEEP_HPP
#define GREENFPGA_SCENARIO_SWEEP_HPP

/// \file sweep.hpp
/// One-dimensional experiment sweeps and crossover detection.
///
/// The paper's core experiments (§4.2 A-C) sweep one of the three scenario
/// variables -- number of applications `N_app`, application lifetime `T_i`,
/// application volume `N_vol` -- holding the other two at the paper
/// defaults, and report where the FPGA and ASIC total-CFP curves cross:
///
///   * A2F crossover: FPGA total drops below ASIC total (FPGA becomes the
///     sustainable choice) as x grows;
///   * F2A crossover: FPGA total rises above ASIC total.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/comparator.hpp"
#include "core/lifecycle_model.hpp"
#include "device/catalog.hpp"

namespace greenfpga::scenario {

/// Direction of a CFP-curve crossing (paper §4.2 definitions).
enum class CrossoverKind {
  a2f,  ///< ASIC-to-FPGA: FPGA becomes lower-CFP at this x
  f2a,  ///< FPGA-to-ASIC: FPGA becomes higher-CFP at this x
};

[[nodiscard]] std::string to_string(CrossoverKind kind);

/// A detected crossing, linearly interpolated between sweep samples.
struct Crossover {
  double x = 0.0;
  CrossoverKind kind = CrossoverKind::a2f;
};

/// Result of sweeping one variable.
struct SweepSeries {
  std::string parameter;  ///< "N_app", "T_i [years]", "N_vol [units]"
  device::Domain domain = device::Domain::dnn;
  std::vector<double> x;
  std::vector<core::CfpBreakdown> asic;
  std::vector<core::CfpBreakdown> fpga;

  [[nodiscard]] std::vector<double> asic_totals_kg() const;
  [[nodiscard]] std::vector<double> fpga_totals_kg() const;
  /// FPGA:ASIC total ratio at each sample.
  [[nodiscard]] std::vector<double> ratios() const;
  [[nodiscard]] std::vector<Crossover> crossovers() const;
};

/// Find sign changes of (fpga - asic), interpolating the crossing x.
/// Exact ties at sample points are reported at that x with the direction
/// inferred from the neighbouring samples.
[[nodiscard]] std::vector<Crossover> find_crossovers(std::span<const double> x,
                                                     std::span<const double> asic_totals,
                                                     std::span<const double> fpga_totals);

/// First crossover of the given kind, if any.
[[nodiscard]] std::optional<double> first_crossover(const std::vector<Crossover>& crossovers,
                                                    CrossoverKind kind);

/// Sweep engine bound to one model and one domain testcase.
///
/// \deprecated Thin shim over `scenario::Engine`: every sweep builds a
/// sweep-kind `ScenarioSpec` and runs it (points evaluated in parallel).
/// New code should construct specs directly.
class SweepEngine {
 public:
  SweepEngine(core::LifecycleModel model, device::DomainTestcase testcase);

  [[nodiscard]] const device::DomainTestcase& testcase() const { return testcase_; }
  [[nodiscard]] const core::LifecycleModel& model() const { return model_; }

  /// Experiment A (Fig. 4): vary N_app from `from` to `to` inclusive.
  [[nodiscard]] SweepSeries sweep_app_count(int from, int to, units::TimeSpan lifetime,
                                            double volume) const;

  /// Experiment B (Fig. 5): vary T_i across `lifetimes_years`.
  [[nodiscard]] SweepSeries sweep_lifetime(std::span<const double> lifetimes_years,
                                           int app_count, double volume) const;

  /// Experiment C (Fig. 6): vary N_vol across `volumes`.
  [[nodiscard]] SweepSeries sweep_volume(std::span<const double> volumes, int app_count,
                                         units::TimeSpan lifetime) const;

  /// Single evaluation at an explicit (N_app, T_i, N_vol) point.
  [[nodiscard]] core::Comparison evaluate_point(int app_count, units::TimeSpan lifetime,
                                                double volume) const;

 private:
  core::LifecycleModel model_;
  device::DomainTestcase testcase_;
};

/// `count` linearly spaced values over [lo, hi] (count >= 2).
[[nodiscard]] std::vector<double> linspace(double lo, double hi, int count);
/// `count` log-spaced values over [lo, hi] (lo, hi > 0, count >= 2).
[[nodiscard]] std::vector<double> logspace(double lo, double hi, int count);

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_SWEEP_HPP
