/// \file heatmap.cpp
/// Pairwise-sweep ratio grids and crossover contour extraction (Fig. 8).

#include "scenario/heatmap.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "scenario/engine.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

/// Grid-kind spec skeleton for the heat-map shims.
ScenarioSpec grid_spec_base(const core::LifecycleModel& model,
                            const device::DomainTestcase& testcase) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::grid;
  spec.domain = testcase.domain;
  spec.suite = model.suite();
  spec.platforms = {PlatformRef{.name = "asic", .chip = testcase.asic},
                    PlatformRef{.name = "fpga", .chip = testcase.fpga}};
  return spec;
}

std::vector<double> as_doubles(std::span<const int> values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const int v : values) {
    out.push_back(static_cast<double>(v));
  }
  return out;
}

}  // namespace

std::vector<Heatmap::ContourPoint> Heatmap::unity_contour() const {
  std::vector<ContourPoint> contour;
  for (std::size_t iy = 0; iy < y.size(); ++iy) {
    const std::vector<double>& row = ratio[iy];
    for (std::size_t ix = 1; ix < row.size(); ++ix) {
      const double prev = row[ix - 1] - 1.0;
      const double curr = row[ix] - 1.0;
      if ((prev <= 0.0 && curr > 0.0) || (prev >= 0.0 && curr < 0.0)) {
        const double t = prev / (prev - curr);
        contour.push_back({x[ix - 1] + t * (x[ix] - x[ix - 1]), y[iy]});
      }
    }
  }
  return contour;
}

double Heatmap::min_ratio() const {
  double best = ratio.at(0).at(0);
  for (const auto& row : ratio) {
    best = std::min(best, *std::min_element(row.begin(), row.end()));
  }
  return best;
}

double Heatmap::max_ratio() const {
  double best = ratio.at(0).at(0);
  for (const auto& row : ratio) {
    best = std::max(best, *std::max_element(row.begin(), row.end()));
  }
  return best;
}

HeatmapEngine::HeatmapEngine(core::LifecycleModel model, device::DomainTestcase testcase)
    : engine_(std::move(model), std::move(testcase)) {}

Heatmap HeatmapEngine::app_count_vs_lifetime(std::span<const int> app_counts,
                                             std::span<const double> lifetimes_years,
                                             double volume) const {
  if (app_counts.empty() || lifetimes_years.empty()) {
    throw std::invalid_argument("heatmap: axes must be non-empty");
  }
  ScenarioSpec spec = grid_spec_base(engine_.model(), engine_.testcase());
  spec.schedule.volume = volume;
  spec.axes = {AxisSpec::list(SweepVariable::app_count, as_doubles(app_counts)),
               AxisSpec::list(SweepVariable::lifetime_years,
                              std::vector<double>(lifetimes_years.begin(),
                                                  lifetimes_years.end()))};
  return Engine().run(spec).heatmap();
}

Heatmap HeatmapEngine::volume_vs_lifetime(std::span<const double> volumes,
                                          std::span<const double> lifetimes_years,
                                          int app_count) const {
  if (volumes.empty() || lifetimes_years.empty()) {
    throw std::invalid_argument("heatmap: axes must be non-empty");
  }
  ScenarioSpec spec = grid_spec_base(engine_.model(), engine_.testcase());
  spec.schedule.app_count = app_count;
  spec.axes = {AxisSpec::list(SweepVariable::volume,
                              std::vector<double>(volumes.begin(), volumes.end())),
               AxisSpec::list(SweepVariable::lifetime_years,
                              std::vector<double>(lifetimes_years.begin(),
                                                  lifetimes_years.end()))};
  return Engine().run(spec).heatmap();
}

Heatmap HeatmapEngine::volume_vs_app_count(std::span<const double> volumes,
                                           std::span<const int> app_counts,
                                           units::TimeSpan lifetime) const {
  if (volumes.empty() || app_counts.empty()) {
    throw std::invalid_argument("heatmap: axes must be non-empty");
  }
  ScenarioSpec spec = grid_spec_base(engine_.model(), engine_.testcase());
  spec.schedule.lifetime_years = lifetime.in(units::unit::years);
  spec.axes = {AxisSpec::list(SweepVariable::volume,
                              std::vector<double>(volumes.begin(), volumes.end())),
               AxisSpec::list(SweepVariable::app_count, as_doubles(app_counts))};
  return Engine().run(spec).heatmap();
}

}  // namespace greenfpga::scenario
