/// \file heatmap.cpp
/// Pairwise-sweep ratio grids and crossover contour extraction (Fig. 8).

#include "scenario/heatmap.hpp"

#include <algorithm>
#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::scenario {

std::vector<Heatmap::ContourPoint> Heatmap::unity_contour() const {
  std::vector<ContourPoint> contour;
  for (std::size_t iy = 0; iy < y.size(); ++iy) {
    const std::vector<double>& row = ratio[iy];
    for (std::size_t ix = 1; ix < row.size(); ++ix) {
      const double prev = row[ix - 1] - 1.0;
      const double curr = row[ix] - 1.0;
      if ((prev <= 0.0 && curr > 0.0) || (prev >= 0.0 && curr < 0.0)) {
        const double t = prev / (prev - curr);
        contour.push_back({x[ix - 1] + t * (x[ix] - x[ix - 1]), y[iy]});
      }
    }
  }
  return contour;
}

double Heatmap::min_ratio() const {
  double best = ratio.at(0).at(0);
  for (const auto& row : ratio) {
    best = std::min(best, *std::min_element(row.begin(), row.end()));
  }
  return best;
}

double Heatmap::max_ratio() const {
  double best = ratio.at(0).at(0);
  for (const auto& row : ratio) {
    best = std::max(best, *std::max_element(row.begin(), row.end()));
  }
  return best;
}

HeatmapEngine::HeatmapEngine(core::LifecycleModel model, device::DomainTestcase testcase)
    : engine_(std::move(model), std::move(testcase)) {}

Heatmap HeatmapEngine::app_count_vs_lifetime(std::span<const int> app_counts,
                                             std::span<const double> lifetimes_years,
                                             double volume) const {
  if (app_counts.empty() || lifetimes_years.empty()) {
    throw std::invalid_argument("heatmap: axes must be non-empty");
  }
  Heatmap map;
  map.x_name = "N_app";
  map.y_name = "T_i [years]";
  map.domain = engine_.testcase().domain;
  map.x.assign(app_counts.size(), 0.0);
  for (std::size_t i = 0; i < app_counts.size(); ++i) {
    map.x[i] = static_cast<double>(app_counts[i]);
  }
  map.y.assign(lifetimes_years.begin(), lifetimes_years.end());
  for (const double years : lifetimes_years) {
    std::vector<double> row;
    row.reserve(app_counts.size());
    for (const int k : app_counts) {
      row.push_back(
          engine_.evaluate_point(k, years * units::unit::years, volume).ratio());
    }
    map.ratio.push_back(std::move(row));
  }
  return map;
}

Heatmap HeatmapEngine::volume_vs_lifetime(std::span<const double> volumes,
                                          std::span<const double> lifetimes_years,
                                          int app_count) const {
  if (volumes.empty() || lifetimes_years.empty()) {
    throw std::invalid_argument("heatmap: axes must be non-empty");
  }
  Heatmap map;
  map.x_name = "N_vol [units]";
  map.y_name = "T_i [years]";
  map.domain = engine_.testcase().domain;
  map.x.assign(volumes.begin(), volumes.end());
  map.y.assign(lifetimes_years.begin(), lifetimes_years.end());
  for (const double years : lifetimes_years) {
    std::vector<double> row;
    row.reserve(volumes.size());
    for (const double volume : volumes) {
      row.push_back(
          engine_.evaluate_point(app_count, years * units::unit::years, volume).ratio());
    }
    map.ratio.push_back(std::move(row));
  }
  return map;
}

Heatmap HeatmapEngine::volume_vs_app_count(std::span<const double> volumes,
                                           std::span<const int> app_counts,
                                           units::TimeSpan lifetime) const {
  if (volumes.empty() || app_counts.empty()) {
    throw std::invalid_argument("heatmap: axes must be non-empty");
  }
  Heatmap map;
  map.x_name = "N_vol [units]";
  map.y_name = "N_app";
  map.domain = engine_.testcase().domain;
  map.x.assign(volumes.begin(), volumes.end());
  map.y.assign(app_counts.size(), 0.0);
  for (std::size_t i = 0; i < app_counts.size(); ++i) {
    map.y[i] = static_cast<double>(app_counts[i]);
  }
  for (const int k : app_counts) {
    std::vector<double> row;
    row.reserve(volumes.size());
    for (const double volume : volumes) {
      row.push_back(engine_.evaluate_point(k, lifetime, volume).ratio());
    }
    map.ratio.push_back(std::move(row));
  }
  return map;
}

}  // namespace greenfpga::scenario
