/// \file timeline.cpp
/// Cumulative CFP timeline with fleet re-manufacture at chip service life (Fig. 9).

#include "scenario/timeline.hpp"

#include <cmath>
#include <stdexcept>

#include "device/iso_performance.hpp"
#include "scenario/engine.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

using units::unit::years;

/// Number of events with period `period` that have occurred by time `t`
/// (events at 0, period, 2*period, ..., strictly before the horizon end is
/// handled by the caller).  Epsilon guards the exact-boundary samples.
int events_by(double t_years, double period_years) {
  return 1 + static_cast<int>(std::floor((t_years + 1e-9) / period_years));
}

}  // namespace

std::vector<Crossover> TimelineSeries::crossovers() const {
  return find_crossovers(time_years, asic_cumulative_kg, fpga_cumulative_kg);
}

TimelineSimulator::TimelineSimulator(core::LifecycleModel model,
                                     device::DomainTestcase testcase)
    : model_(std::move(model)), testcase_(std::move(testcase)) {}

TimelineSeries TimelineSimulator::run(const TimelineParameters& parameters) const {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::timeline;
  spec.domain = testcase_.domain;
  spec.suite = model_.suite();
  spec.platforms = {PlatformRef{.name = "asic", .chip = testcase_.asic},
                    PlatformRef{.name = "fpga", .chip = testcase_.fpga}};
  spec.schedule.lifetime_years = parameters.app_lifetime.in(years);
  spec.schedule.volume = parameters.volume;
  spec.timeline.horizon_years = parameters.horizon.in(years);
  spec.timeline.step_years = parameters.step.in(years);
  return *Engine().run(spec).timeline;
}

TimelineSeries simulate_timeline(const core::LifecycleModel& model,
                                 const device::DomainTestcase& testcase,
                                 double horizon_years, double app_lifetime_years,
                                 double volume, double step_years) {
  if (horizon_years <= 0.0 || app_lifetime_years <= 0.0 || step_years <= 0.0) {
    throw std::invalid_argument("TimelineSimulator: durations must be positive");
  }
  if (volume <= 0.0) {
    throw std::invalid_argument("TimelineSimulator: volume must be positive");
  }

  const double horizon = horizon_years;
  const double app_period = app_lifetime_years;
  const double step = step_years;
  const double fpga_life = testcase.fpga.service_life.in(years);

  // Per-event carbon quantities (volume-scaled).
  const int n_fpga = device::chips_per_unit(testcase.fpga, /*application_gates=*/0.0);
  const double fleet_chips = volume * static_cast<double>(n_fpga);

  const units::CarbonMass asic_embodied_per_app =
      model.per_chip_embodied(testcase.asic).total() * volume +
      model.design_model().design_carbon(testcase.asic);
  const units::CarbonMass fpga_fleet_silicon =
      model.per_chip_embodied(testcase.fpga).total() * fleet_chips;
  const units::CarbonMass fpga_design = model.design_model().design_carbon(testcase.fpga);
  const units::CarbonMass fpga_appdev_per_app =
      model.appdev_model().per_application(fleet_chips, /*is_fpga=*/true).total();
  const units::CarbonMass asic_appdev_per_app =
      model.appdev_model().per_application(volume, /*is_fpga=*/false).total();

  // Continuous operational rates (per year of deployment).
  const units::CarbonMass asic_op_per_year =
      model.operational_model().annual_carbon(testcase.asic.peak_power) * volume;
  const units::CarbonMass fpga_op_per_year =
      model.operational_model().annual_carbon(testcase.fpga.peak_power *
                                              static_cast<double>(n_fpga)) *
      volume;

  TimelineSeries series;
  const int samples = static_cast<int>(std::round(horizon / step)) + 1;
  series.time_years.reserve(static_cast<std::size_t>(samples));

  // Events happen at 0, period, 2*period, ... strictly inside the horizon;
  // nothing new starts at the horizon endpoint itself.
  const int apps_total = 1 + static_cast<int>(std::floor((horizon - 1e-9) / app_period));
  const int fleet_purchases_total =
      1 + static_cast<int>(std::floor((horizon - 1e-9) / fpga_life));
  for (int p = 0; p < fleet_purchases_total; ++p) {
    series.fpga_purchase_years.push_back(static_cast<double>(p) * fpga_life);
  }

  for (int i = 0; i < samples; ++i) {
    const double t = std::min(static_cast<double>(i) * step, horizon);

    // Discrete events so far.
    const int apps_started = std::min(events_by(t, app_period), apps_total);
    const int fleets_bought = std::min(events_by(t, fpga_life), fleet_purchases_total);

    const double asic_kg = asic_embodied_per_app.canonical() * apps_started +
                           asic_appdev_per_app.canonical() * apps_started +
                           asic_op_per_year.canonical() * t;
    const double fpga_kg = fpga_design.canonical() +
                           fpga_fleet_silicon.canonical() * fleets_bought +
                           fpga_appdev_per_app.canonical() * apps_started +
                           fpga_op_per_year.canonical() * t;

    series.time_years.push_back(t);
    series.asic_cumulative_kg.push_back(asic_kg);
    series.fpga_cumulative_kg.push_back(fpga_kg);
  }
  return series;
}

}  // namespace greenfpga::scenario
