#ifndef GREENFPGA_SCENARIO_KIND_REGISTRY_HPP
#define GREENFPGA_SCENARIO_KIND_REGISTRY_HPP

/// \file kind_registry.hpp
/// The scenario-kind registry: one `KindModule` vtable per `ScenarioKind`.
///
/// Every per-kind behaviour the system needs -- spec parameter JSON,
/// validation, engine execution, batch job planning, result JSON, frame
/// lowering, and text rendering -- lives in that kind's module under
/// `src/scenario/kinds/`, and the generic layers (spec.cpp, engine.cpp,
/// result_io.cpp, report/result_render.cpp, the CLI) derive their
/// behaviour by iterating or indexing the registry.  Adding a scenario
/// kind means adding one enum value, one module file, and one registry
/// entry -- no switch ladder grows (a CI lint rejects `case ScenarioKind`
/// outside `src/scenario/kinds/`).  See ARCHITECTURE.md, "Scenario kind
/// registry", for the step-by-step recipe.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "report/result_frame.hpp"
#include "scenario/engine.hpp"

namespace greenfpga::scenario {

/// Execution context handed to a module's `execute` hook.
struct KindRunContext {
  int threads = 1;  ///< the engine's worker budget for internal pools
};

/// A kind's contribution to `Engine::run_batch`: how its work flattens
/// onto the shared pool.  A module that returns task-level plans lets the
/// batch interleave its tasks with every other spec's; a null `plan_jobs`
/// hook makes the kind a single whole-spec task instead.
struct KindBatchPlan {
  std::size_t task_count = 0;
  /// True when jobs want the per-suite memoised `LifecycleModel` (point
  /// evaluations); the batch then passes a worker-local model shared by
  /// every spec with the same effective suite.  False passes nullptr.
  bool uses_suite_model = false;
  /// Run task `index` into `result` (a pre-sized slot; bit-identical for
  /// any worker count).  Must not capture references into the planning
  /// call's locals beyond the suite/result the engine keeps alive.
  std::function<void(core::LifecycleModel* model, std::size_t index,
                     ScenarioResult& result)>
      run_job;
  /// Serial post-phase after every task completed (deterministic
  /// reductions); may be null.
  std::function<void(ScenarioResult& result)> assemble;
};

/// One scenario kind's complete behaviour.  Hooks may be null where the
/// table below says "optional"; `name`, `kind` and `execute` are required.
struct KindModule {
  ScenarioKind kind = ScenarioKind::compare;
  std::string_view name;                        ///< canonical kind token
  std::span<const std::string_view> aliases;    ///< extra parse tokens
  std::string_view summary;                     ///< one-line CLI help text

  // -- spec layer ------------------------------------------------------------
  /// Axis arity `ScenarioSpec::validate` enforces for this kind.
  std::size_t expected_axes = 0;
  /// Top-level spec keys this module owns (parsed by `parse_params`).
  std::span<const std::string_view> spec_keys;
  /// Seed kind defaults into a fresh spec (`ScenarioSpec::make`).  Called
  /// for every module regardless of kind -- the canonical spec JSON emits
  /// every kind's section -- so a module whose defaults only apply to its
  /// own kind must check `spec.kind` itself.  Optional.
  void (*seed_defaults)(ScenarioSpec& spec) = nullptr;
  /// Emit this module's spec sections into the canonical JSON object.
  /// Called for every module on every spec (key order is irrelevant: the
  /// JSON object sorts keys).  Optional.
  void (*params_to_json)(const ScenarioSpec& spec, io::Json& out) = nullptr;
  /// Parse this module's sections when present (any kind; the canonical
  /// form carries every section).  Optional.
  void (*parse_params)(const io::Json& json, ScenarioSpec& spec) = nullptr;
  /// Kind-specific validation, called by `ScenarioSpec::validate` for
  /// specs of this kind after the structural checks.  Optional.
  void (*validate)(const ScenarioSpec& spec) = nullptr;
  /// Default platform list when the spec names none; null means the
  /// paper's ASIC/FPGA head-to-head pair.  Optional.
  std::vector<PlatformRef> (*default_platforms)() = nullptr;

  // -- engine layer ----------------------------------------------------------
  /// Evaluate a prepared spec: fill `result`'s payload from the effective
  /// `suite`.  Required.
  void (*execute)(const KindRunContext& context, const core::ModelSuite& suite,
                  ScenarioResult& result) = nullptr;
  /// Plan batch tasks (see KindBatchPlan).  `suite` and `result` outlive
  /// the plan.  Optional: null runs the spec as one whole task.
  KindBatchPlan (*plan_jobs)(const core::ModelSuite& suite,
                             ScenarioResult& result) = nullptr;

  // -- result-io layer -------------------------------------------------------
  /// Top-level result keys this module owns (exactly one owner per key).
  std::span<const std::string_view> result_keys;
  /// Emit this module's result payload sections (presence-based: emit only
  /// what the result carries).  Called for every module.  Optional.
  void (*result_to_json)(const ScenarioResult& result, io::Json& out) = nullptr;
  /// Parse this module's sections when present.  Called for every module.
  /// Optional.
  void (*result_from_json)(const io::Json& json, ScenarioResult& result) = nullptr;

  // -- report layer ----------------------------------------------------------
  /// Lower the result into presentation frames.  Required.
  void (*to_frames)(const ScenarioResult& result,
                    std::vector<report::ResultFrame>& frames) = nullptr;
  /// Kind-specific text rendering (charts, summary lines).  Return true
  /// when handled; false (or a null hook) falls back to the plain frame
  /// tables.  Optional.
  bool (*render_text)(const ScenarioResult& result,
                      std::span<const report::ResultFrame> frames,
                      std::ostream& out) = nullptr;
  /// Whether `--csv` should append the per-sample Monte-Carlo frame
  /// (`mc_samples_frame`) for specs of this kind.  Optional (null = no).
  bool (*sample_csv)(const ScenarioSpec& spec) = nullptr;
};

/// Every registered module, indexed by `static_cast<std::size_t>(kind)`.
[[nodiscard]] std::span<const KindModule* const> all_kind_modules();

/// The module of `kind`; throws std::logic_error for an unregistered value.
[[nodiscard]] const KindModule& kind_module(ScenarioKind kind);

/// Look a module up by canonical name or alias; nullptr when unknown.
[[nodiscard]] const KindModule* find_kind_module(std::string_view name);

/// "compare, sweep, grid, ..." -- the canonical names in enum order, for
/// error messages and CLI help (generated, so the list can never drift).
[[nodiscard]] std::string kind_name_list();

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_KIND_REGISTRY_HPP
