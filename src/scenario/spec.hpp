#ifndef GREENFPGA_SCENARIO_SPEC_HPP
#define GREENFPGA_SCENARIO_SPEC_HPP

/// \file spec.hpp
/// Declarative scenario specification: the single input type of the
/// evaluation engine.
///
/// A `ScenarioSpec` is a plain data object describing *what* to evaluate
/// -- platforms (by registry name or explicit device), a model suite, a
/// deployment schedule, optional sweep/grid axes, an optional time-varying
/// grid profile, and output selection -- while `scenario::Engine` decides
/// *how* (dispatch, parallelism, memoisation).  Every legacy scenario
/// entry point (sweep, heatmap, breakeven, node DSE, timeline,
/// sensitivity) is a thin builder over this type, and the same shape
/// round-trips through JSON (`spec_to_json` / `spec_from_json`) so
/// arbitrary user-authored scenarios run via `greenfpga run <spec.json>`
/// without recompiling.
///
/// JSON round-trip contract: `spec_to_json` is canonical and total (every
/// field, defaults included), so serialize -> parse -> re-serialize is
/// byte-identical (pinned by tests/engine_test.cpp).  The only spec
/// content that does not survive JSON is a *programmatic* sensitivity
/// range (a custom `ParameterRange` applier): ranges serialize by name and
/// are reconstructed from `table1_ranges()` on load.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/lifecycle_model.hpp"
#include "core/paper_config.hpp"
#include "core/param_distributions.hpp"
#include "device/chip_spec.hpp"
#include "dse/frontier_spec.hpp"
#include "io/json.hpp"
#include "scenario/fleet.hpp"
#include "scenario/sensitivity.hpp"
#include "tech/node.hpp"
#include "workload/application.hpp"

namespace greenfpga::scenario {

/// What kind of experiment a spec describes; selects the engine's
/// dispatch path.
enum class ScenarioKind {
  compare,      ///< one evaluation point, all platforms head-to-head
  sweep,        ///< 1-D sweep over one axis (paper Figs. 4-6)
  grid,         ///< 2-D grid over two axes (paper Fig. 8 heat-maps)
  timeline,     ///< cumulative multi-decade replay (paper Fig. 9)
  node_dse,     ///< fabrication-node design-space exploration
  breakeven,    ///< closed-form crossover solves in all three variables
  sensitivity,  ///< tornado + Monte-Carlo over parameter ranges
  montecarlo,   ///< uncertainty quantification: distribution-sampled inputs
  frontier,     ///< platform win-region DSE over 2-4 deployment axes
  fleet,        ///< mixed-platform datacenter serving a traffic trace
};

[[nodiscard]] std::string to_string(ScenarioKind kind);
[[nodiscard]] std::optional<ScenarioKind> parse_scenario_kind(std::string_view text);

/// The scenario variables an axis can sweep (the paper's N_app, T_i, N_vol).
enum class SweepVariable {
  app_count,
  lifetime_years,
  volume,
};

[[nodiscard]] std::string to_string(SweepVariable variable);
[[nodiscard]] std::optional<SweepVariable> parse_sweep_variable(std::string_view text);

/// How an axis generates its sample values.
enum class AxisScale {
  list,    ///< explicit values
  linear,  ///< linspace(from, to, count)
  log,     ///< logspace(from, to, count)
};

[[nodiscard]] std::string to_string(AxisScale scale);

/// One sweep/grid axis: a scenario variable plus its sample generator.
/// Keeping the generator (rather than materialised samples) preserves the
/// author's intent through JSON round-trips.
struct AxisSpec {
  SweepVariable variable = SweepVariable::app_count;
  AxisScale scale = AxisScale::list;
  double from = 0.0;
  double to = 0.0;
  int count = 0;
  std::vector<double> explicit_values;  ///< used when scale == list

  /// Materialise the sample values.
  [[nodiscard]] std::vector<double> values() const;

  /// Legacy axis label ("N_app", "T_i [years]", "N_vol [units]").
  [[nodiscard]] std::string label() const;

  [[nodiscard]] static AxisSpec list(SweepVariable variable, std::vector<double> values);
  [[nodiscard]] static AxisSpec linear(SweepVariable variable, double from, double to,
                                       int count);
  [[nodiscard]] static AxisSpec log(SweepVariable variable, double from, double to,
                                    int count);
};

/// A platform under evaluation: a registry name, optionally pinned to an
/// explicit device (which bypasses the registry lookup).
struct PlatformRef {
  std::string name;
  std::optional<device::ChipSpec> chip;
};

/// The deployment schedule, in the paper's homogeneous parameterisation
/// (N_app identical applications at T_i / N_vol), or an explicit
/// application list.  Axes override the homogeneous fields per point;
/// an explicit schedule is incompatible with axes.  The member defaults
/// mirror `core::SweepDefaults`; `ScenarioSpec::make()` re-seeds them
/// from `core::paper_sweep_defaults()` so a calibration change reaches
/// the engine path.
struct ScheduleSpec {
  int app_count = 5;
  double lifetime_years = 2.0;
  double volume = 1e6;
  std::optional<workload::Schedule> explicit_schedule;

  /// Build the concrete schedule for `domain` (paper prototype apps).
  [[nodiscard]] workload::Schedule materialise(device::Domain domain) const;
};

/// Time-varying grid-intensity selection (act/grid_profile): a named
/// 24-hour profile plus the duty scheduling policy.  When set, the engine
/// replaces `suite.operation.use_intensity` with the effective scheduled
/// intensity before evaluating.
struct GridProfileSpec {
  std::string profile = "uniform";  ///< "uniform" | "solar_duck" | "windy_night"
  std::string policy = "uniform";   ///< "uniform" | "carbon_aware" | "worst_case"
};

/// Timeline-kind parameters (schedule supplies T_i and N_vol).
struct TimelineSpec {
  double horizon_years = 45.0;
  double step_years = 0.25;
};

/// Node-DSE-kind parameters.  Default subject: the domain's FPGA.
struct DseSpec {
  std::optional<device::ChipSpec> chip;
  std::vector<tech::ProcessNode> nodes;  ///< empty = all database nodes
};

/// Breakeven-kind parameters: which closed-form solves to run (the
/// schedule supplies the fixed-point context).  Each solve validates its
/// own single-fleet precondition, so selecting a subset matches the
/// legacy per-method behaviour exactly.
struct BreakevenSpec {
  bool solve_app_count = true;
  bool solve_lifetime = true;
  bool solve_volume = true;
};

/// Sensitivity-kind parameters.  `ranges` is taken verbatim (empty =
/// perturb nothing); `ScenarioSpec::make()` seeds it with
/// `table1_ranges()`, and a JSON spec that omits "ranges" keeps that
/// default while "ranges": [...] (by name, including []) replaces it.
struct SensitivitySpec {
  bool run_tornado = true;
  bool run_monte_carlo = true;
  int samples = 256;
  unsigned seed = 42;
  std::vector<ParameterRange> ranges;
};

/// Monte-Carlo-kind parameters: how many lifecycle evaluations to sample,
/// the RNG seed, the per-parameter input distributions, and which output
/// percentiles to report.  `distributions` attach to *named* Table 1
/// parameters (`table1_ranges()` names); `ScenarioSpec::make()` seeds them
/// as uniform over every Table 1 range, and a JSON spec that omits
/// "distributions" keeps that default while "distributions": [...]
/// (including []) replaces it.  Sampling uses counter-based per-sample RNG
/// streams (`core::counter_uniform01`), so engine results are bit-identical
/// for any worker count.
struct MonteCarloUqSpec {
  int samples = 1024;
  unsigned seed = 42;
  std::vector<core::ParamDistribution> distributions;
  /// Reported percentiles, in percent, strictly increasing in [0, 100].
  std::vector<double> percentiles = {5.0, 25.0, 50.0, 75.0, 95.0};
};

/// Uniform distributions over every Table 1 range: the montecarlo default
/// (mirrors `table1_ranges()` name-for-name).
[[nodiscard]] std::vector<core::ParamDistribution> default_distributions();

/// Output selection: what the engine retains in the result.
struct OutputSpec {
  /// Keep per-application attribution in every evaluated point.  Always
  /// kept for `compare`; off by default for sweeps/grids, where it would
  /// multiply the result size by the schedule length.
  bool per_application = false;
};

/// The declarative scenario: a plain aggregate, JSON round-trippable.
struct ScenarioSpec {
  std::string name = "scenario";
  ScenarioKind kind = ScenarioKind::compare;
  device::Domain domain = device::Domain::dnn;
  /// Platforms in evaluation order; the first is the ratio baseline.
  /// Empty means {"asic", "fpga"}.
  std::vector<PlatformRef> platforms;
  core::ModelSuite suite;  ///< defaults to core::paper_suite() via make()
  ScheduleSpec schedule;
  std::vector<AxisSpec> axes;  ///< sweep: exactly 1; grid: exactly 2
  std::optional<GridProfileSpec> grid_profile;
  TimelineSpec timeline;
  DseSpec dse;
  BreakevenSpec breakeven;
  SensitivitySpec sensitivity;
  MonteCarloUqSpec montecarlo;
  /// Frontier-kind parameters (dse/frontier_spec.hpp).  `make()` seeds a
  /// default app_count x volume grid; the confidence pass draws its
  /// parameter distributions from `montecarlo.distributions`.
  dse::FrontierSpec frontier;
  /// Fleet-kind parameters.  Engaged only for the fleet kind (`make()`
  /// seeds `default_fleet_spec()` there); nullopt -- and omitted from the
  /// JSON form -- for every other kind, so pre-registry specs stay
  /// byte-identical.
  std::optional<FleetSpec> fleet;
  OutputSpec outputs;

  /// A spec with the paper-default suite (aggregate initialisation would
  /// zero-initialise `suite`, which is never what an author wants).
  [[nodiscard]] static ScenarioSpec make(ScenarioKind kind,
                                         device::Domain domain = device::Domain::dnn);

  /// Structural validation (axis arity per kind, axis generators,
  /// schedule/axes compatibility).  Throws std::invalid_argument.
  void validate() const;
};

/// Canonical JSON form (every field, defaults included, keys sorted).
[[nodiscard]] io::Json spec_to_json(const ScenarioSpec& spec);

/// Parse a spec; absent fields keep their defaults (suite defaults to the
/// paper suite).  Unknown keys raise core::ConfigError.
[[nodiscard]] ScenarioSpec spec_from_json(const io::Json& json);

/// Load a spec file (JSON with // comments allowed).
[[nodiscard]] ScenarioSpec load_spec(const std::string& path);

/// Parse an already-loaded spec document, wrapping every parse/validation
/// error with `source` exactly like `load_spec` (for callers that have
/// read the file for other reasons, e.g. the batch manifest scan).
[[nodiscard]] ScenarioSpec load_spec_json(const io::Json& json, const std::string& source);

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_SPEC_HPP
