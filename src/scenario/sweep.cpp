/// \file sweep.cpp
/// 1-D sweep execution and A2F/F2A crossover detection.

#include "scenario/sweep.hpp"

#include <cmath>
#include <stdexcept>

#include "core/paper_config.hpp"
#include "scenario/engine.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

/// Spec skeleton shared by the SweepEngine shims: explicit testcase chips,
/// the bound model's suite.
ScenarioSpec sweep_spec_base(const core::LifecycleModel& model,
                             const device::DomainTestcase& testcase, ScenarioKind kind) {
  ScenarioSpec spec;
  spec.kind = kind;
  spec.domain = testcase.domain;
  spec.suite = model.suite();
  spec.platforms = {PlatformRef{.name = "asic", .chip = testcase.asic},
                    PlatformRef{.name = "fpga", .chip = testcase.fpga}};
  return spec;
}

}  // namespace

std::string to_string(CrossoverKind kind) {
  switch (kind) {
    case CrossoverKind::a2f:
      return "A2F";
    case CrossoverKind::f2a:
      return "F2A";
  }
  return "unknown";
}

std::vector<double> SweepSeries::asic_totals_kg() const {
  std::vector<double> out;
  out.reserve(asic.size());
  for (const core::CfpBreakdown& b : asic) {
    out.push_back(b.total().canonical());
  }
  return out;
}

std::vector<double> SweepSeries::fpga_totals_kg() const {
  std::vector<double> out;
  out.reserve(fpga.size());
  for (const core::CfpBreakdown& b : fpga) {
    out.push_back(b.total().canonical());
  }
  return out;
}

std::vector<double> SweepSeries::ratios() const {
  const std::vector<double> a = asic_totals_kg();
  const std::vector<double> f = fpga_totals_kg();
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = f[i] / a[i];
  }
  return out;
}

std::vector<Crossover> SweepSeries::crossovers() const {
  return find_crossovers(x, asic_totals_kg(), fpga_totals_kg());
}

std::vector<Crossover> find_crossovers(std::span<const double> x,
                                       std::span<const double> asic_totals,
                                       std::span<const double> fpga_totals) {
  if (x.size() != asic_totals.size() || x.size() != fpga_totals.size()) {
    throw std::invalid_argument("find_crossovers: series lengths differ");
  }
  std::vector<Crossover> result;
  // Track the sign of the last nonzero difference so that a curve touching
  // zero at a sample point yields exactly one crossover (not one per
  // adjacent interval) and a touch-and-return yields none.
  int last_sign = 0;  // diff > 0: FPGA worse; diff < 0: FPGA better
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double diff = fpga_totals[i] - asic_totals[i];
    const int sign = diff > 0.0 ? 1 : (diff < 0.0 ? -1 : 0);
    if (sign == 0) {
      continue;
    }
    if (last_sign != 0 && sign != last_sign && i > 0) {
      const double prev = fpga_totals[i - 1] - asic_totals[i - 1];
      const double t = prev / (prev - diff);
      const double crossing = x[i - 1] + t * (x[i] - x[i - 1]);
      result.push_back(
          {crossing, sign < 0 ? CrossoverKind::a2f : CrossoverKind::f2a});
    }
    last_sign = sign;
  }
  return result;
}

std::optional<double> first_crossover(const std::vector<Crossover>& crossovers,
                                      CrossoverKind kind) {
  for (const Crossover& crossover : crossovers) {
    if (crossover.kind == kind) {
      return crossover.x;
    }
  }
  return std::nullopt;
}

SweepEngine::SweepEngine(core::LifecycleModel model, device::DomainTestcase testcase)
    : model_(std::move(model)), testcase_(std::move(testcase)) {}

core::Comparison SweepEngine::evaluate_point(int app_count, units::TimeSpan lifetime,
                                             double volume) const {
  // Single-point probe on the bound model (benches and examples call this
  // in tight loops; spinning up an Engine per point would swamp the model
  // cost).  The sweeps below go through the engine, whose per-point
  // evaluation tests/engine_test.cpp pins to this exact path.
  const workload::Schedule schedule =
      core::paper_schedule(testcase_.domain, app_count, lifetime, volume);
  return core::compare(model_, testcase_, schedule);
}

SweepSeries SweepEngine::sweep_app_count(int from, int to, units::TimeSpan lifetime,
                                         double volume) const {
  if (from < 1 || to < from) {
    throw std::invalid_argument("sweep_app_count: need 1 <= from <= to");
  }
  std::vector<double> counts;
  counts.reserve(static_cast<std::size_t>(to - from + 1));
  for (int k = from; k <= to; ++k) {
    counts.push_back(static_cast<double>(k));
  }
  ScenarioSpec spec = sweep_spec_base(model_, testcase_, ScenarioKind::sweep);
  spec.schedule.lifetime_years = lifetime.in(units::unit::years);
  spec.schedule.volume = volume;
  spec.axes = {AxisSpec::list(SweepVariable::app_count, std::move(counts))};
  return Engine().run(spec).sweep_series();
}

SweepSeries SweepEngine::sweep_lifetime(std::span<const double> lifetimes_years,
                                        int app_count, double volume) const {
  if (lifetimes_years.empty()) {
    // Legacy contract: an empty sample list yields an empty series
    // (a spec axis, by contrast, must be non-empty).
    SweepSeries series;
    series.parameter = "T_i [years]";
    series.domain = testcase_.domain;
    return series;
  }
  ScenarioSpec spec = sweep_spec_base(model_, testcase_, ScenarioKind::sweep);
  spec.schedule.app_count = app_count;
  spec.schedule.volume = volume;
  spec.axes = {AxisSpec::list(
      SweepVariable::lifetime_years,
      std::vector<double>(lifetimes_years.begin(), lifetimes_years.end()))};
  return Engine().run(spec).sweep_series();
}

SweepSeries SweepEngine::sweep_volume(std::span<const double> volumes, int app_count,
                                      units::TimeSpan lifetime) const {
  if (volumes.empty()) {
    // Legacy contract: see sweep_lifetime.
    SweepSeries series;
    series.parameter = "N_vol [units]";
    series.domain = testcase_.domain;
    return series;
  }
  ScenarioSpec spec = sweep_spec_base(model_, testcase_, ScenarioKind::sweep);
  spec.schedule.app_count = app_count;
  spec.schedule.lifetime_years = lifetime.in(units::unit::years);
  spec.axes = {AxisSpec::list(SweepVariable::volume,
                              std::vector<double>(volumes.begin(), volumes.end()))};
  return Engine().run(spec).sweep_series();
}

std::vector<double> linspace(double lo, double hi, int count) {
  if (count < 2) {
    throw std::invalid_argument("linspace: need at least 2 points");
  }
  std::vector<double> out(static_cast<std::size_t>(count));
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) {
    out[static_cast<std::size_t>(i)] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid accumulated rounding on the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, int count) {
  if (lo <= 0.0 || hi <= 0.0) {
    throw std::invalid_argument("logspace: bounds must be positive");
  }
  std::vector<double> out = linspace(std::log10(lo), std::log10(hi), count);
  for (double& v : out) {
    v = std::pow(10.0, v);
  }
  out.back() = hi;
  return out;
}

}  // namespace greenfpga::scenario
