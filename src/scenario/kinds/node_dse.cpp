/// \file node_dse.cpp
/// The node_dse kind: fabrication-node design-space exploration of one
/// subject device.

#include <span>
#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

constexpr std::string_view kAliases[] = {"nodes"};
constexpr std::string_view kSpecKeys[] = {"dse"};
constexpr std::string_view kResultKeys[] = {"candidates"};

void params_to_json(const ScenarioSpec& spec, Json& out) {
  Json dse = Json::object();
  if (spec.dse.chip) {
    dse["chip"] = core::to_json(*spec.dse.chip);
  }
  Json nodes = Json::array();
  for (const tech::ProcessNode node : spec.dse.nodes) {
    nodes.push_back(tech::to_string(node));
  }
  dse["nodes"] = std::move(nodes);
  out["dse"] = std::move(dse);
}

void parse_params(const Json& json, ScenarioSpec& spec) {
  if (!json.contains("dse")) {
    return;
  }
  const Json& entry = json.at("dse");
  core::check_known_keys(entry, "dse", {"chip", "nodes"});
  DseSpec dse;
  if (entry.contains("chip")) {
    dse.chip = core::chip_from_json(entry.at("chip"));
  }
  if (entry.contains("nodes")) {
    for (const Json& value : entry.at("nodes").as_array()) {
      const auto node = tech::parse_node(value.as_string());
      if (!node) {
        throw core::ConfigError("unknown process node \"" + value.as_string() + "\"");
      }
      dse.nodes.push_back(*node);
    }
  }
  spec.dse = std::move(dse);
}

/// node_dse explores ONE subject device across nodes (the domain FPGA by
/// default); every other kind defaults to the paper's ASIC/FPGA
/// head-to-head.
std::vector<PlatformRef> default_platforms() {
  return {PlatformRef{.name = "fpga", .chip = std::nullopt}};
}

void execute(const KindRunContext& context, const core::ModelSuite& suite,
             ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  // The subject is dse.chip when pinned, else the spec's single platform
  // (prepare() defaults an empty list to {"fpga"}).  More than one
  // platform is a shape error: a node DSE ranks retargets of ONE device.
  if (!spec.dse.chip && result.resolved_chips.size() != 1) {
    std::string got;
    for (const std::string& name : result.platform_names) {
      got += got.empty() ? name : ", " + name;
    }
    throw std::invalid_argument(
        "Engine: node_dse scenarios explore one subject platform (or an explicit "
        "dse.chip), got {" +
        got + "}");
  }
  const device::ChipSpec subject =
      spec.dse.chip ? *spec.dse.chip : result.resolved_chips.front();
  const std::span<const tech::ProcessNode> nodes =
      spec.dse.nodes.empty() ? tech::all_nodes()
                             : std::span<const tech::ProcessNode>(spec.dse.nodes);
  const workload::Schedule schedule = spec.schedule.materialise(spec.domain);

  // Retarget serially (cheap, and infeasible nodes are simply skipped),
  // then evaluate the surviving candidates on the pool.
  std::vector<device::ChipSpec> retargeted;
  retargeted.reserve(nodes.size());
  for (const tech::ProcessNode node : nodes) {
    try {
      retargeted.push_back(retarget_to_node(subject, node));
    } catch (const std::invalid_argument&) {
      continue;  // does not fit the reticle on this node
    }
  }
  result.candidates.resize(retargeted.size());
  parallel_for(retargeted.size(), context.threads, suite,
               [&](core::LifecycleModel& model, std::size_t i) {
                 result.candidates[i] =
                     evaluate_node_candidate(model, schedule, retargeted[i]);
               });
  rank_node_candidates(result.candidates);  // throws when nothing fits a reticle
}

void result_to_json(const ScenarioResult& result, Json& out) {
  if (result.candidates.empty()) {
    return;
  }
  Json candidates = Json::array();
  for (const NodeCandidate& candidate : result.candidates) {
    Json entry = Json::object();
    entry["chip"] = core::to_json(candidate.chip);
    entry["lifecycle"] = core::to_json(candidate.lifecycle);
    entry["total_vs_best"] = candidate.total_vs_best;
    candidates.push_back(std::move(entry));
  }
  out["candidates"] = std::move(candidates);
}

void result_from_json(const Json& json, ScenarioResult& result) {
  if (!json.contains("candidates")) {
    return;
  }
  for (const Json& entry : json.at("candidates").as_array()) {
    core::check_known_keys(entry, "result candidate",
                           {"chip", "lifecycle", "total_vs_best"});
    NodeCandidate candidate;
    candidate.chip = core::chip_from_json(entry.at("chip"));
    candidate.lifecycle = core::breakdown_from_json(entry.at("lifecycle"));
    candidate.total_vs_best = entry.at("total_vs_best").as_number_total();
    result.candidates.push_back(std::move(candidate));
  }
}

void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  ResultFrame frame;
  frame.name = "nodes";
  frame.columns = {Column{.name = "rank", .unit = "", .precision = 4},
                   Column{.name = "node", .unit = "", .precision = 4},
                   Column{.name = "die area", .unit = "mm^2", .precision = 4},
                   Column{.name = "peak power", .unit = "W", .precision = 4},
                   Column{.name = "total", .unit = "t CO2e", .precision = 5},
                   Column{.name = "vs best", .unit = "", .precision = 4}};
  double rank = 1.0;
  for (const NodeCandidate& candidate : result.candidates) {
    frame.add_row({Cell(rank), Cell(tech::to_string(candidate.chip.node)),
                   Cell(candidate.chip.die_area.in(units::unit::mm2)),
                   Cell(candidate.chip.peak_power.in(units::unit::w)),
                   Cell(candidate.total().in(units::unit::t_co2e)),
                   Cell(candidate.total_vs_best)});
    rank += 1.0;
  }
  frames.push_back(std::move(frame));
}

}  // namespace

const KindModule& node_dse_module() {
  static const KindModule module{
      .kind = ScenarioKind::node_dse,
      .name = "node_dse",
      .aliases = kAliases,
      .summary = "fabrication-node design-space exploration",
      .spec_keys = kSpecKeys,
      .params_to_json = params_to_json,
      .parse_params = parse_params,
      .default_platforms = default_platforms,
      .execute = execute,
      .result_keys = kResultKeys,
      .result_to_json = result_to_json,
      .result_from_json = result_from_json,
      .to_frames = to_frames,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
