/// \file grid.cpp
/// The grid kind: 2-D grid over two axes (paper Fig. 8 heat-maps).
/// Points serialize through the compare module's shared "points" section;
/// the classic ASIC/FPGA pair renders as the shaded ratio heat-map.

#include <ostream>
#include <utility>

#include "report/ascii_chart.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"
#include "units/format.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using report::ResultFrame;

constexpr std::string_view kAliases[] = {"heatmap"};

void execute(const KindRunContext& context, const core::ModelSuite& suite,
             ScenarioResult& result) {
  points_execute(context, suite, result);
}

/// The classic ASIC/FPGA pair, for which the 2-D ratio renderings exist.
bool classic_pair(const ScenarioResult& result) {
  return result.platform_names.size() == 2 &&
         result.platform_index(device::ChipKind::asic) &&
         result.platform_index(device::ChipKind::fpga);
}

void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  ResultFrame frame = points_frame(result, "grid");
  if (result.platform_index(device::ChipKind::asic) &&
      result.platform_index(device::ChipKind::fpga) &&
      result.platform_names.size() == 2) {
    const Heatmap map = result.heatmap();
    frame.set_meta("ratio range",
                   "[" + units::format_significant(map.min_ratio(), 4) + ", " +
                       units::format_significant(map.max_ratio(), 4) + "]");
    frame.set_meta("unity-contour points", std::to_string(map.unity_contour().size()));
  }
  frames.push_back(std::move(frame));
}

bool render_text(const ScenarioResult& result, std::span<const ResultFrame> frames,
                 std::ostream& out) {
  // The classic ASIC/FPGA pair reads better as the shaded ratio grid
  // than as a point-per-row table; other platform sets have no 2-D
  // ratio rendering, so they print the frame.
  if (!classic_pair(result)) {
    return false;
  }
  out << report::render_heatmap(result.heatmap());
  for (const auto& [key, value] : frames.front().metadata) {
    out << key << ": " << value << "\n";
  }
  return true;
}

}  // namespace

const KindModule& grid_module() {
  static const KindModule module{
      .kind = ScenarioKind::grid,
      .name = "grid",
      .aliases = kAliases,
      .summary = "2-D grid over two axes (paper Fig. 8 heat-maps)",
      .expected_axes = 2,
      .execute = execute,
      .plan_jobs = points_plan_jobs,
      .to_frames = to_frames,
      .render_text = render_text,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
