#ifndef GREENFPGA_SCENARIO_KINDS_MODULES_HPP
#define GREENFPGA_SCENARIO_KINDS_MODULES_HPP

/// \file modules.hpp
/// The per-kind module accessors the registry assembles.  Each returns a
/// function-local static (safe against static-initialisation order); the
/// definitions live in the sibling <kind>.cpp files.

#include "scenario/kind_registry.hpp"

namespace greenfpga::scenario::kinds {

[[nodiscard]] const KindModule& compare_module();
[[nodiscard]] const KindModule& sweep_module();
[[nodiscard]] const KindModule& grid_module();
[[nodiscard]] const KindModule& timeline_module();
[[nodiscard]] const KindModule& node_dse_module();
[[nodiscard]] const KindModule& breakeven_module();
[[nodiscard]] const KindModule& sensitivity_module();
[[nodiscard]] const KindModule& montecarlo_module();
[[nodiscard]] const KindModule& frontier_module();
[[nodiscard]] const KindModule& fleet_module();

}  // namespace greenfpga::scenario::kinds

#endif  // GREENFPGA_SCENARIO_KINDS_MODULES_HPP
