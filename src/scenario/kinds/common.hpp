#ifndef GREENFPGA_SCENARIO_KINDS_COMMON_HPP
#define GREENFPGA_SCENARIO_KINDS_COMMON_HPP

/// \file common.hpp
/// Machinery shared by the kind modules: the parallel point executor, the
/// Monte-Carlo sample/reduce pipeline, the ASIC/FPGA testcase extractor,
/// shared validation blocks, and the frame/JSON helpers several kinds
/// emit through.  Everything here used to live inline in engine.cpp /
/// result_io.cpp / spec.cpp behind per-kind switches; the modules under
/// this directory are its only intended consumers.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/parallel.hpp"
#include "device/catalog.hpp"
#include "report/result_frame.hpp"
#include "scenario/kind_registry.hpp"

namespace greenfpga::scenario::kinds {

inline constexpr double kKgPerTonne = 1000.0;

/// The classic pool shape: each worker owns a private LifecycleModel built
/// from `suite` (the model's embodied-carbon memoisation is not
/// thread-safe to share).
template <typename Fn>
void parallel_for(std::size_t n, int threads, const core::ModelSuite& suite, Fn&& fn) {
  core::parallel_for_state(
      n, threads, [&suite] { return core::LifecycleModel(suite); }, std::forward<Fn>(fn));
}

// -- point machinery (compare / sweep / grid) --------------------------------------

/// Materialised point grid of a compare/sweep/grid spec.
struct PointPlan {
  std::vector<std::vector<double>> axis_values;
  std::size_t total = 1;
  bool keep_per_application = false;
};

[[nodiscard]] PointPlan plan_points(const ScenarioSpec& spec);

/// Evaluate scenario point `i` into `point` (pre-sized slot).  Pure in
/// (spec, plan, chips, i): results never depend on which worker runs it.
void evaluate_point(const ScenarioSpec& spec, const PointPlan& plan,
                    const std::vector<device::ChipSpec>& chips,
                    core::LifecycleModel& model, std::size_t i, EvalPoint& point);

/// The point kinds' `execute` hook: evaluate every point on the pool.
void points_execute(const KindRunContext& context, const core::ModelSuite& suite,
                    ScenarioResult& result);

/// The point kinds' `plan_jobs` hook: one batch task per point, sharing
/// the per-suite memoised model.
[[nodiscard]] KindBatchPlan points_plan_jobs(const core::ModelSuite& suite,
                                             ScenarioResult& result);

// -- Monte-Carlo reduction (montecarlo / fleet) ------------------------------------

/// Serial reduction over the filled sample matrix (deterministic order).
void reduce_montecarlo(MonteCarloUq& uq);

// -- shared extraction / validation ------------------------------------------------

/// The ASIC/FPGA testcase required by the testcase-shaped kinds.  Exactly
/// two platforms: silently ignoring extras would let a user believe e.g.
/// a GPU took part in a timeline that cannot model it.  The error names
/// the actual platform list so a four-way spec fails with an actionable
/// message instead of a bare arity complaint.
[[nodiscard]] device::DomainTestcase testcase_of(const ScenarioResult& result,
                                                 const std::string& kind_name);

/// Reject an explicit application list for kinds parameterised by the
/// homogeneous schedule fields only (timeline, breakeven, frontier,
/// fleet), where silently dropping the list would be a trap.
void require_homogeneous_schedule(const ScenarioSpec& spec);

/// Validate `spec.montecarlo.distributions` (bounds, known Table 1 names,
/// no duplicates) for every kind that samples them.
void validate_spec_distributions(const ScenarioSpec& spec);

// -- result JSON helpers -----------------------------------------------------------

[[nodiscard]] io::Json doubles_to_json(const std::vector<double>& values);
[[nodiscard]] std::vector<double> doubles_from_json(const io::Json& json);

// -- frame helpers -----------------------------------------------------------------

/// Ratio column label of platform `index` over the baseline.
[[nodiscard]] std::string ratio_label(const ScenarioResult& result, std::size_t index);

/// Shared frame for the point-evaluating kinds: one row per point, axis
/// coordinates first, then per-platform totals, then baseline ratios.
[[nodiscard]] report::ResultFrame points_frame(const ScenarioResult& result,
                                               const std::string& name);

/// The uncertainty summary frame over `result.uncertainty` (montecarlo
/// kind, and fleet with Monte-Carlo samples).
[[nodiscard]] report::ResultFrame uncertainty_frame(const ScenarioResult& result);

// -- spec-parse helpers ------------------------------------------------------------

/// Named-field numeric reads: a type-mismatched value raises io::JsonError
/// without saying *which* field was bad, so wrap the access and rethrow as
/// ConfigError naming the enclosing context and key (surfaced verbatim by
/// `greenfpga run` together with the spec path).
[[nodiscard]] double number_field(const io::Json& json, const std::string& context,
                                  std::string_view key);
[[nodiscard]] double number_field_or(const io::Json& json, const std::string& context,
                                     std::string_view key, double fallback);

/// int_field_or with the same context-prefixed errors as number_field, so
/// integer fields (samples, seed, count) report their section too.
[[nodiscard]] std::int64_t int_field_ctx(const io::Json& json, const std::string& context,
                                         std::string_view key, std::int64_t fallback,
                                         std::int64_t lo, std::int64_t hi);

}  // namespace greenfpga::scenario::kinds

#endif  // GREENFPGA_SCENARIO_KINDS_COMMON_HPP
