/// \file timeline.cpp
/// The timeline kind: cumulative multi-decade replay (paper Fig. 9).

#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"
#include "units/format.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

constexpr std::string_view kSpecKeys[] = {"timeline"};
constexpr std::string_view kResultKeys[] = {"timeline"};

void params_to_json(const ScenarioSpec& spec, Json& out) {
  Json timeline = Json::object();
  timeline["horizon_years"] = spec.timeline.horizon_years;
  timeline["step_years"] = spec.timeline.step_years;
  out["timeline"] = std::move(timeline);
}

void parse_params(const Json& json, ScenarioSpec& spec) {
  if (!json.contains("timeline")) {
    return;
  }
  core::check_known_keys(json.at("timeline"), "timeline",
                         {"horizon_years", "step_years"});
  spec.timeline.horizon_years =
      json.at("timeline").number_or("horizon_years", spec.timeline.horizon_years);
  spec.timeline.step_years =
      json.at("timeline").number_or("step_years", spec.timeline.step_years);
}

void validate(const ScenarioSpec& spec) {
  require_homogeneous_schedule(spec);
  if (spec.timeline.horizon_years <= 0.0 || spec.timeline.step_years <= 0.0) {
    throw std::invalid_argument("ScenarioSpec '" + spec.name +
                                "': timeline horizon and step must be positive");
  }
}

void execute(const KindRunContext& /*context*/, const core::ModelSuite& suite,
             ScenarioResult& result) {
  const device::DomainTestcase testcase = testcase_of(result, "timeline");
  const core::LifecycleModel model(suite);
  result.timeline =
      simulate_timeline(model, testcase, result.spec.timeline.horizon_years,
                        result.spec.schedule.lifetime_years, result.spec.schedule.volume,
                        result.spec.timeline.step_years);
}

void result_to_json(const ScenarioResult& result, Json& out) {
  if (!result.timeline) {
    return;
  }
  Json timeline = Json::object();
  timeline["time_years"] = doubles_to_json(result.timeline->time_years);
  timeline["asic_cumulative_kg"] = doubles_to_json(result.timeline->asic_cumulative_kg);
  timeline["fpga_cumulative_kg"] = doubles_to_json(result.timeline->fpga_cumulative_kg);
  timeline["fpga_purchase_years"] =
      doubles_to_json(result.timeline->fpga_purchase_years);
  out["timeline"] = std::move(timeline);
}

void result_from_json(const Json& json, ScenarioResult& result) {
  if (!json.contains("timeline")) {
    return;
  }
  const Json& timeline = json.at("timeline");
  core::check_known_keys(timeline, "result timeline",
                         {"time_years", "asic_cumulative_kg", "fpga_cumulative_kg",
                          "fpga_purchase_years"});
  TimelineSeries series;
  series.time_years = doubles_from_json(timeline.at("time_years"));
  series.asic_cumulative_kg = doubles_from_json(timeline.at("asic_cumulative_kg"));
  series.fpga_cumulative_kg = doubles_from_json(timeline.at("fpga_cumulative_kg"));
  series.fpga_purchase_years = doubles_from_json(timeline.at("fpga_purchase_years"));
  result.timeline = std::move(series);
}

void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  const TimelineSeries& series = *result.timeline;
  ResultFrame frame;
  frame.name = "timeline";
  frame.columns = {Column{.name = "time", .unit = "years", .precision = 4},
                   Column{.name = "ASIC cumulative", .unit = "kg CO2e", .precision = 5},
                   Column{.name = "FPGA cumulative", .unit = "kg CO2e", .precision = 5}};
  for (std::size_t i = 0; i < series.time_years.size(); ++i) {
    frame.add_row({Cell(series.time_years[i]), Cell(series.asic_cumulative_kg[i]),
                   Cell(series.fpga_cumulative_kg[i])});
  }
  frame.set_meta("horizon",
                 units::format_significant(series.time_years.back(), 4) + " years");
  frame.set_meta("FPGA fleet purchases", std::to_string(series.fpga_purchase_years.size()));
  frame.set_meta(
      "final cumulative",
      "ASIC " +
          units::format_significant(series.asic_cumulative_kg.back() / kKgPerTonne, 5) +
          " t CO2e, FPGA " +
          units::format_significant(series.fpga_cumulative_kg.back() / kKgPerTonne, 5) +
          " t CO2e");
  std::string crossovers;
  for (const Crossover& crossover : series.crossovers()) {
    crossovers += (crossovers.empty() ? "" : "; ") + to_string(crossover.kind) + " at " +
                  units::format_significant(crossover.x, 4) + " y";
  }
  frame.set_meta("crossovers", crossovers.empty() ? "none" : crossovers);
  frames.push_back(std::move(frame));
}

bool render_text(const ScenarioResult& /*result*/, std::span<const ResultFrame> frames,
                 std::ostream& out) {
  // The cumulative series runs to hundreds of samples; the human
  // report is its summary lines (CSV/JSON carry the full series).
  for (const auto& [key, value] : frames.front().metadata) {
    out << key << ": " << value << "\n";
  }
  return true;
}

}  // namespace

const KindModule& timeline_module() {
  static const KindModule module{
      .kind = ScenarioKind::timeline,
      .name = "timeline",
      .summary = "cumulative multi-decade replay (paper Fig. 9)",
      .spec_keys = kSpecKeys,
      .params_to_json = params_to_json,
      .parse_params = parse_params,
      .validate = validate,
      .execute = execute,
      .result_keys = kResultKeys,
      .result_to_json = result_to_json,
      .result_from_json = result_from_json,
      .to_frames = to_frames,
      .render_text = render_text,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
