/// \file sweep.cpp
/// The sweep kind: 1-D sweep over one axis (paper Figs. 4-6).  Points
/// serialize through the compare module's shared "points" section.

#include <utility>

#include "report/figure_writer.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using report::ResultFrame;

void execute(const KindRunContext& context, const core::ModelSuite& suite,
             ScenarioResult& result) {
  points_execute(context, suite, result);
}

void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  ResultFrame frame = points_frame(result, "sweep");
  if (result.platform_index(device::ChipKind::asic) &&
      result.platform_index(device::ChipKind::fpga) &&
      result.platform_names.size() == 2) {
    frame.set_meta("crossovers", report::crossover_summary(result.sweep_series()));
  }
  frames.push_back(std::move(frame));
}

}  // namespace

const KindModule& sweep_module() {
  static const KindModule module{
      .kind = ScenarioKind::sweep,
      .name = "sweep",
      .summary = "1-D sweep over one axis (paper Figs. 4-6)",
      .expected_axes = 1,
      .execute = execute,
      .plan_jobs = points_plan_jobs,
      .to_frames = to_frames,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
