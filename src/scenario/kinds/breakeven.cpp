/// \file breakeven.cpp
/// The breakeven kind: closed-form crossover solves in all three
/// deployment variables.

#include <optional>
#include <utility>

#include "core/config_io.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

constexpr std::string_view kSpecKeys[] = {"breakeven"};
constexpr std::string_view kResultKeys[] = {"breakeven"};

void params_to_json(const ScenarioSpec& spec, Json& out) {
  Json breakeven = Json::object();
  breakeven["solve_app_count"] = spec.breakeven.solve_app_count;
  breakeven["solve_lifetime"] = spec.breakeven.solve_lifetime;
  breakeven["solve_volume"] = spec.breakeven.solve_volume;
  out["breakeven"] = std::move(breakeven);
}

void parse_params(const Json& json, ScenarioSpec& spec) {
  if (!json.contains("breakeven")) {
    return;
  }
  core::check_known_keys(json.at("breakeven"), "breakeven",
                         {"solve_app_count", "solve_lifetime", "solve_volume"});
  spec.breakeven.solve_app_count =
      json.at("breakeven").bool_or("solve_app_count", spec.breakeven.solve_app_count);
  spec.breakeven.solve_lifetime =
      json.at("breakeven").bool_or("solve_lifetime", spec.breakeven.solve_lifetime);
  spec.breakeven.solve_volume =
      json.at("breakeven").bool_or("solve_volume", spec.breakeven.solve_volume);
}

void validate(const ScenarioSpec& spec) {
  // This kind is parameterised by the homogeneous fields only (the
  // solver's context is a fixed point); silently dropping an application
  // list would be a trap.
  require_homogeneous_schedule(spec);
}

void execute(const KindRunContext& /*context*/, const core::ModelSuite& suite,
             ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  const device::DomainTestcase testcase = testcase_of(result, "breakeven");
  const core::LifecycleModel model(suite);
  const BreakevenContext context{
      .app_count = spec.schedule.app_count,
      .app_lifetime = spec.schedule.lifetime_years * units::unit::years,
      .app_volume = spec.schedule.volume,
  };
  BreakevenReport report;
  if (spec.breakeven.solve_app_count) {
    report.app_count = solve_app_count_breakeven(model, testcase, context);
  }
  if (spec.breakeven.solve_lifetime) {
    report.lifetime_years = solve_lifetime_breakeven(model, testcase, context);
  }
  if (spec.breakeven.solve_volume) {
    report.volume = solve_volume_breakeven(model, testcase, context);
  }
  result.breakeven = report;
}

void result_to_json(const ScenarioResult& result, Json& out) {
  if (!result.breakeven) {
    return;
  }
  // Requested solves always emit their key (null = no crossover);
  // unrequested solves omit it, so consumers can tell the states apart.
  Json breakeven = Json::object();
  const auto emit = [&breakeven](bool requested, const char* key,
                                 const std::optional<double>& value) {
    if (requested) {
      breakeven[key] = value ? Json(*value) : Json(nullptr);
    }
  };
  emit(result.spec.breakeven.solve_app_count, "app_count", result.breakeven->app_count);
  emit(result.spec.breakeven.solve_lifetime, "lifetime_years",
       result.breakeven->lifetime_years);
  emit(result.spec.breakeven.solve_volume, "volume", result.breakeven->volume);
  out["breakeven"] = std::move(breakeven);
}

void result_from_json(const Json& json, ScenarioResult& result) {
  if (!json.contains("breakeven")) {
    return;
  }
  const Json& breakeven = json.at("breakeven");
  core::check_known_keys(breakeven, "result breakeven",
                         {"app_count", "lifetime_years", "volume"});
  BreakevenReport report;
  const auto read = [&breakeven](const char* key) -> std::optional<double> {
    if (!breakeven.contains(key) || breakeven.at(key).is_null()) {
      return std::nullopt;
    }
    return breakeven.at(key).as_number_total();
  };
  report.app_count = read("app_count");
  report.lifetime_years = read("lifetime_years");
  report.volume = read("volume");
  result.breakeven = report;
}

void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  const BreakevenReport& report = *result.breakeven;
  ResultFrame frame;
  frame.name = "breakeven";
  frame.columns = {Column{.name = "variable", .unit = "", .precision = 4},
                   Column{.name = "requested", .unit = "", .precision = 4},
                   Column{.name = "breakeven", .unit = "", .precision = 4}};
  const auto row = [&frame](const char* variable, bool requested,
                            const std::optional<double>& value) {
    frame.add_row({Cell(std::string(variable)),
                   Cell(std::string(requested ? "yes" : "no")),
                   value ? Cell(*value) : Cell(nullptr)});
  };
  row("N_app", result.spec.breakeven.solve_app_count, report.app_count);
  row("T_i [years]", result.spec.breakeven.solve_lifetime, report.lifetime_years);
  row("N_vol [units]", result.spec.breakeven.solve_volume, report.volume);
  frames.push_back(std::move(frame));
}

}  // namespace

const KindModule& breakeven_module() {
  static const KindModule module{
      .kind = ScenarioKind::breakeven,
      .name = "breakeven",
      .summary = "closed-form crossover solves in all three variables",
      .spec_keys = kSpecKeys,
      .params_to_json = params_to_json,
      .parse_params = parse_params,
      .validate = validate,
      .execute = execute,
      .result_keys = kResultKeys,
      .result_to_json = result_to_json,
      .result_from_json = result_from_json,
      .to_frames = to_frames,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
