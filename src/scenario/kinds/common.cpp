/// \file common.cpp
/// Shared kind-module machinery (see common.hpp).

#include "scenario/kinds/common.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/config_io.hpp"
#include "units/format.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

/// Apply one axis coordinate to the homogeneous schedule fields.
void apply_axis(ScheduleSpec& schedule, SweepVariable variable, double value) {
  switch (variable) {
    case SweepVariable::app_count:
      schedule.app_count = static_cast<int>(std::llround(value));
      return;
    case SweepVariable::lifetime_years:
      schedule.lifetime_years = value;
      return;
    case SweepVariable::volume:
      schedule.volume = value;
      return;
  }
  throw std::logic_error("Engine: unknown sweep variable");
}

}  // namespace

PointPlan plan_points(const ScenarioSpec& spec) {
  PointPlan plan;
  plan.axis_values.reserve(spec.axes.size());
  for (const AxisSpec& axis : spec.axes) {
    plan.axis_values.push_back(axis.values());
    plan.total *= plan.axis_values.back().size();
  }
  plan.keep_per_application =
      spec.kind == ScenarioKind::compare || spec.outputs.per_application;
  return plan;
}

void evaluate_point(const ScenarioSpec& spec, const PointPlan& plan,
                    const std::vector<device::ChipSpec>& chips,
                    core::LifecycleModel& model, std::size_t i, EvalPoint& point) {
  ScheduleSpec schedule_spec = spec.schedule;
  std::size_t remainder = i;
  point.coords.reserve(plan.axis_values.size());
  for (const std::vector<double>& values : plan.axis_values) {
    const double value = values[remainder % values.size()];
    remainder /= values.size();
    point.coords.push_back(value);
  }
  for (std::size_t a = 0; a < plan.axis_values.size(); ++a) {
    apply_axis(schedule_spec, spec.axes[a].variable, point.coords[a]);
  }
  const workload::Schedule schedule = schedule_spec.materialise(spec.domain);
  point.platforms.reserve(chips.size());
  for (const device::ChipSpec& chip : chips) {
    point.platforms.push_back(model.evaluate(chip, schedule));
    if (!plan.keep_per_application) {
      point.platforms.back().per_application.clear();
      point.platforms.back().per_application.shrink_to_fit();
    }
  }
}

void points_execute(const KindRunContext& context, const core::ModelSuite& suite,
                    ScenarioResult& result) {
  // Coordinate grid: axis 0 is the inner (fastest) dimension.
  const PointPlan plan = plan_points(result.spec);
  result.points.resize(plan.total);
  parallel_for(plan.total, context.threads, suite,
               [&](core::LifecycleModel& model, std::size_t i) {
                 evaluate_point(result.spec, plan, result.resolved_chips, model, i,
                                result.points[i]);
               });
}

KindBatchPlan points_plan_jobs(const core::ModelSuite& /*suite*/,
                               ScenarioResult& result) {
  KindBatchPlan plan;
  auto points = std::make_shared<const PointPlan>(plan_points(result.spec));
  plan.task_count = points->total;
  plan.uses_suite_model = true;
  result.points.resize(points->total);
  plan.run_job = [points](core::LifecycleModel* model, std::size_t index,
                          ScenarioResult& result) {
    evaluate_point(result.spec, *points, result.resolved_chips, *model, index,
                   result.points[index]);
  };
  return plan;
}

void reduce_montecarlo(MonteCarloUq& uq) {
  const std::size_t platforms = uq.sample_totals_kg.size();
  const std::size_t samples = uq.sample_totals_kg.front().size();
  uq.platform_total.reserve(platforms);
  for (std::size_t p = 0; p < platforms; ++p) {
    uq.platform_total.push_back(summarise_samples(uq.sample_totals_kg[p], uq.percentiles));
  }
  for (std::size_t p = 1; p < platforms; ++p) {
    const std::vector<double> ratios = uq.ratio_samples(p);
    std::size_t wins = 0;
    for (const double r : ratios) {
      if (r < 1.0) {
        ++wins;
      }
    }
    uq.win_fraction.push_back(static_cast<double>(wins) / static_cast<double>(samples));
    uq.ratio.push_back(summarise_samples(ratios, uq.percentiles));
  }
}

device::DomainTestcase testcase_of(const ScenarioResult& result,
                                   const std::string& kind_name) {
  const auto asic = result.platform_index(device::ChipKind::asic);
  const auto fpga = result.platform_index(device::ChipKind::fpga);
  if (!asic || !fpga || result.resolved_chips.size() != 2) {
    std::string got;
    for (const std::string& name : result.platform_names) {
      got += got.empty() ? name : ", " + name;
    }
    throw std::invalid_argument("Engine: " + kind_name +
                                " scenarios need exactly one ASIC and one FPGA "
                                "platform, got {" +
                                got + "}");
  }
  return device::DomainTestcase{.domain = result.spec.domain,
                                .asic = result.resolved_chips[*asic],
                                .fpga = result.resolved_chips[*fpga]};
}

void require_homogeneous_schedule(const ScenarioSpec& spec) {
  if (spec.schedule.explicit_schedule) {
    throw std::invalid_argument("ScenarioSpec '" + spec.name + "': kind " +
                                to_string(spec.kind) +
                                " uses the homogeneous schedule fields, not an explicit "
                                "application list");
  }
}

void validate_spec_distributions(const ScenarioSpec& spec) {
  const std::vector<ParameterRange> known = table1_ranges();
  std::vector<std::string_view> seen;
  for (const core::ParamDistribution& distribution : spec.montecarlo.distributions) {
    distribution.validate();  // bounds/stddev/mode checks, names the parameter
    const bool found =
        std::any_of(known.begin(), known.end(), [&](const ParameterRange& range) {
          return range.name == distribution.parameter;
        });
    if (!found) {
      throw std::invalid_argument("ScenarioSpec '" + spec.name +
                                  "': unknown distribution parameter \"" +
                                  distribution.parameter + "\" (see table1_ranges)");
    }
    // Duplicates would apply last-writer-wins per sample, silently
    // dropping the earlier entry's uncertainty.
    if (std::find(seen.begin(), seen.end(), distribution.parameter) != seen.end()) {
      throw std::invalid_argument("ScenarioSpec '" + spec.name +
                                  "': duplicate distribution for parameter \"" +
                                  distribution.parameter + "\"");
    }
    seen.push_back(distribution.parameter);
  }
}

Json doubles_to_json(const std::vector<double>& values) {
  Json out = Json::array();
  for (const double v : values) {
    out.push_back(v);
  }
  return out;
}

std::vector<double> doubles_from_json(const Json& json) {
  std::vector<double> out;
  out.reserve(json.size());
  for (const Json& v : json.as_array()) {
    // Total read: the canonical writer encodes non-finite cells as
    // string sentinels, and result payloads may legitimately carry them
    // (a zero-baseline ratio, an unbounded solve).
    out.push_back(v.as_number_total());
  }
  return out;
}

std::string ratio_label(const ScenarioResult& result, std::size_t index) {
  return result.platform_names[index] + ":" + result.platform_names[0];
}

ResultFrame points_frame(const ScenarioResult& result, const std::string& name) {
  ResultFrame frame;
  frame.name = name;
  for (const AxisSpec& axis : result.spec.axes) {
    frame.columns.push_back(Column{.name = axis.label(), .unit = "", .precision = 4});
  }
  for (const std::string& platform : result.platform_names) {
    frame.columns.push_back(Column{.name = platform, .unit = "t CO2e", .precision = 5});
  }
  for (std::size_t i = 1; i < result.platform_names.size(); ++i) {
    frame.columns.push_back(Column{.name = ratio_label(result, i), .unit = "",
                                   .precision = 4});
  }
  for (const EvalPoint& point : result.points) {
    std::vector<Cell> row;
    row.reserve(frame.columns.size());
    for (const double c : point.coords) {
      row.emplace_back(c);
    }
    for (const core::PlatformCfp& platform : point.platforms) {
      row.emplace_back(platform.total.total().in(units::unit::t_co2e));
    }
    for (std::size_t i = 1; i < point.platforms.size(); ++i) {
      row.emplace_back(point.ratio(i));
    }
    frame.add_row(std::move(row));
  }
  return frame;
}

ResultFrame uncertainty_frame(const ScenarioResult& result) {
  const MonteCarloUq& uq = *result.uncertainty;
  ResultFrame frame;
  frame.name = "uncertainty";
  frame.columns = {Column{.name = "metric", .unit = "", .precision = 5},
                   Column{.name = "mean", .unit = "", .precision = 5},
                   Column{.name = "stddev", .unit = "", .precision = 5}};
  for (const double p : uq.percentiles) {
    frame.columns.push_back(Column{.name = "p" + units::format_significant(p, 4),
                                   .unit = "", .precision = 5});
  }
  const auto add_stat = [&frame](const std::string& metric, const UqStat& stat,
                                 double scale) {
    std::vector<Cell> row{Cell(metric), Cell(stat.mean * scale),
                          Cell(stat.stddev * scale)};
    for (const double v : stat.percentile_values) {
      row.emplace_back(v * scale);
    }
    frame.add_row(std::move(row));
  };
  for (std::size_t p = 0; p < uq.platform_total.size(); ++p) {
    add_stat(result.platform_names[p] + " [t CO2e]", uq.platform_total[p],
             1.0 / kKgPerTonne);
  }
  for (std::size_t k = 0; k < uq.ratio.size(); ++k) {
    add_stat(ratio_label(result, k + 1) + " ratio", uq.ratio[k], 1.0);
  }
  frame.set_meta("Monte-Carlo",
                 std::to_string(uq.samples) + " samples, seed " +
                     std::to_string(result.spec.montecarlo.seed) + ", " +
                     std::to_string(result.spec.montecarlo.distributions.size()) +
                     " uncertain parameter(s)");
  for (std::size_t k = 0; k < uq.win_fraction.size(); ++k) {
    frame.set_meta(ratio_label(result, k + 1) + " verdict",
                   result.platform_names[k + 1] + " beats " + result.platform_names[0] +
                       " in " +
                       units::format_significant(100.0 * uq.win_fraction[k], 4) +
                       " % of samples");
  }
  return frame;
}

double number_field(const Json& json, const std::string& context, std::string_view key) {
  try {
    return json.at(key).as_number();
  } catch (const io::JsonError& error) {
    throw core::ConfigError(context + "." + std::string(key) + ": " + error.what());
  }
}

double number_field_or(const Json& json, const std::string& context, std::string_view key,
                       double fallback) {
  return json.contains(key) ? number_field(json, context, key) : fallback;
}

std::int64_t int_field_ctx(const Json& json, const std::string& context,
                           std::string_view key, std::int64_t fallback, std::int64_t lo,
                           std::int64_t hi) {
  try {
    return core::int_field_or(json, key, fallback, lo, hi);
  } catch (const core::ConfigError& error) {
    throw core::ConfigError(context + "." + std::string(key) + ": " + error.what());
  }
}

}  // namespace greenfpga::scenario::kinds
