/// \file sensitivity.cpp
/// The sensitivity kind: tornado + Monte-Carlo over Table 1 parameter
/// ranges.

#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

constexpr std::string_view kSpecKeys[] = {"sensitivity"};
constexpr std::string_view kResultKeys[] = {"tornado", "monte_carlo"};

void seed_defaults(ScenarioSpec& spec) {
  spec.sensitivity.ranges = table1_ranges();
}

void params_to_json(const ScenarioSpec& spec, Json& out) {
  Json sensitivity = Json::object();
  sensitivity["run_tornado"] = spec.sensitivity.run_tornado;
  sensitivity["run_monte_carlo"] = spec.sensitivity.run_monte_carlo;
  sensitivity["samples"] = spec.sensitivity.samples;
  sensitivity["seed"] = static_cast<std::int64_t>(spec.sensitivity.seed);
  Json ranges = Json::array();
  for (const ParameterRange& range : spec.sensitivity.ranges) {
    ranges.push_back(range.name);
  }
  sensitivity["ranges"] = std::move(ranges);
  out["sensitivity"] = std::move(sensitivity);
}

void parse_params(const Json& json, ScenarioSpec& spec) {
  if (!json.contains("sensitivity")) {
    return;
  }
  const Json& entry = json.at("sensitivity");
  core::check_known_keys(entry, "sensitivity",
                         {"run_tornado", "run_monte_carlo", "samples", "seed", "ranges"});
  SensitivitySpec& sensitivity = spec.sensitivity;
  sensitivity.run_tornado = entry.bool_or("run_tornado", sensitivity.run_tornado);
  sensitivity.run_monte_carlo =
      entry.bool_or("run_monte_carlo", sensitivity.run_monte_carlo);
  sensitivity.samples = static_cast<int>(
      int_field_ctx(entry, "sensitivity", "samples", sensitivity.samples, 1,
                    100'000'000));
  sensitivity.seed = static_cast<unsigned>(
      int_field_ctx(entry, "sensitivity", "seed", sensitivity.seed, 0,
                    4294967295LL));
  if (entry.contains("ranges")) {
    sensitivity.ranges.clear();
    const std::vector<ParameterRange> known = table1_ranges();
    for (const Json& value : entry.at("ranges").as_array()) {
      const std::string& range_name = value.as_string();
      bool found = false;
      for (const ParameterRange& range : known) {
        if (range.name == range_name) {
          sensitivity.ranges.push_back(range);
          found = true;
          break;
        }
      }
      if (!found) {
        throw core::ConfigError("unknown sensitivity range \"" + range_name +
                                "\" (see table1_ranges)");
      }
    }
  }
}

void validate(const ScenarioSpec& spec) {
  if (spec.sensitivity.run_monte_carlo && spec.sensitivity.samples < 1) {
    throw std::invalid_argument("ScenarioSpec '" + spec.name +
                                "': sensitivity needs at least one Monte-Carlo sample");
  }
}

void execute(const KindRunContext& /*context*/, const core::ModelSuite& suite,
             ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  const device::DomainTestcase testcase = testcase_of(result, "sensitivity");
  const workload::Schedule schedule = spec.schedule.materialise(spec.domain);
  if (spec.sensitivity.run_tornado) {
    result.tornado =
        detail::tornado_analysis(suite, testcase, schedule, spec.sensitivity.ranges);
  }
  if (spec.sensitivity.run_monte_carlo) {
    result.monte_carlo = detail::monte_carlo_analysis(
        suite, testcase, schedule, spec.sensitivity.ranges, spec.sensitivity.samples,
        spec.sensitivity.seed);
  }
}

void result_to_json(const ScenarioResult& result, Json& out) {
  if (!result.tornado.empty()) {
    Json tornado = Json::array();
    for (const TornadoEntry& entry : result.tornado) {
      Json row = Json::object();
      row["name"] = entry.name;
      row["ratio_at_low"] = entry.ratio_at_low;
      row["ratio_at_high"] = entry.ratio_at_high;
      row["swing"] = entry.swing();
      tornado.push_back(std::move(row));
    }
    out["tornado"] = std::move(tornado);
  }
  if (result.monte_carlo) {
    Json mc = Json::object();
    mc["samples"] = result.monte_carlo->samples;
    mc["mean"] = result.monte_carlo->mean;
    mc["stddev"] = result.monte_carlo->stddev;
    mc["p05"] = result.monte_carlo->p05;
    mc["p50"] = result.monte_carlo->p50;
    mc["p95"] = result.monte_carlo->p95;
    mc["fpga_win_fraction"] = result.monte_carlo->fpga_win_fraction;
    out["monte_carlo"] = std::move(mc);
  }
}

void result_from_json(const Json& json, ScenarioResult& result) {
  if (json.contains("tornado")) {
    for (const Json& entry : json.at("tornado").as_array()) {
      core::check_known_keys(entry, "result tornado entry",
                             {"name", "ratio_at_low", "ratio_at_high", "swing"});
      TornadoEntry tornado;
      tornado.name = entry.at("name").as_string();
      tornado.ratio_at_low = entry.at("ratio_at_low").as_number_total();
      tornado.ratio_at_high = entry.at("ratio_at_high").as_number_total();
      result.tornado.push_back(std::move(tornado));
    }
  }
  if (json.contains("monte_carlo")) {
    const Json& mc = json.at("monte_carlo");
    core::check_known_keys(mc, "result monte_carlo",
                           {"samples", "mean", "stddev", "p05", "p50", "p95",
                            "fpga_win_fraction"});
    MonteCarloResult summary;
    summary.samples = static_cast<int>(mc.at("samples").as_int());
    summary.mean = mc.at("mean").as_number_total();
    summary.stddev = mc.at("stddev").as_number_total();
    summary.p05 = mc.at("p05").as_number_total();
    summary.p50 = mc.at("p50").as_number_total();
    summary.p95 = mc.at("p95").as_number_total();
    summary.fpga_win_fraction = mc.at("fpga_win_fraction").as_number_total();
    result.monte_carlo = summary;
  }
}

void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  if (!result.tornado.empty()) {
    ResultFrame frame;
    frame.name = "tornado";
    frame.columns = {Column{.name = "parameter", .unit = "", .precision = 4},
                     Column{.name = "ratio at low", .unit = "", .precision = 4},
                     Column{.name = "ratio at high", .unit = "", .precision = 4},
                     Column{.name = "swing", .unit = "", .precision = 4}};
    for (const TornadoEntry& entry : result.tornado) {
      frame.add_row({Cell(entry.name), Cell(entry.ratio_at_low),
                     Cell(entry.ratio_at_high), Cell(entry.swing())});
    }
    frames.push_back(std::move(frame));
  }
  if (result.monte_carlo) {
    const MonteCarloResult& mc = *result.monte_carlo;
    ResultFrame frame;
    frame.name = "montecarlo_summary";
    frame.columns = {Column{.name = "samples", .unit = "", .precision = 6},
                     Column{.name = "mean ratio", .unit = "", .precision = 4},
                     Column{.name = "stddev", .unit = "", .precision = 4},
                     Column{.name = "p05", .unit = "", .precision = 4},
                     Column{.name = "p50", .unit = "", .precision = 4},
                     Column{.name = "p95", .unit = "", .precision = 4},
                     Column{.name = "FPGA win fraction", .unit = "", .precision = 4}};
    frame.add_row({Cell(static_cast<double>(mc.samples)), Cell(mc.mean), Cell(mc.stddev),
                   Cell(mc.p05), Cell(mc.p50), Cell(mc.p95), Cell(mc.fpga_win_fraction)});
    frames.push_back(std::move(frame));
  }
}

}  // namespace

const KindModule& sensitivity_module() {
  static const KindModule module{
      .kind = ScenarioKind::sensitivity,
      .name = "sensitivity",
      .summary = "tornado + Monte-Carlo over parameter ranges",
      .spec_keys = kSpecKeys,
      .seed_defaults = seed_defaults,
      .params_to_json = params_to_json,
      .parse_params = parse_params,
      .validate = validate,
      .execute = execute,
      .result_keys = kResultKeys,
      .result_to_json = result_to_json,
      .result_from_json = result_from_json,
      .to_frames = to_frames,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
