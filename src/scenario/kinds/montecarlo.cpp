/// \file montecarlo.cpp
/// The montecarlo kind: uncertainty quantification over
/// distribution-sampled Table 1 parameters.

#include <algorithm>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "report/ascii_chart.hpp"
#include "report/result_frame.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;

constexpr std::string_view kAliases[] = {"monte_carlo", "mc"};
constexpr std::string_view kSpecKeys[] = {"montecarlo"};
constexpr std::string_view kResultKeys[] = {"uncertainty"};

void seed_defaults(ScenarioSpec& spec) {
  spec.montecarlo.distributions = default_distributions();
}

/// Canonical form: only the fields the kind actually uses, so authors see
/// no spurious knobs and the round-trip stays byte-identical.
Json distribution_to_json(const core::ParamDistribution& distribution) {
  Json out = Json::object();
  out["parameter"] = distribution.parameter;
  out["kind"] = core::to_string(distribution.kind);
  out["low"] = distribution.low;
  out["high"] = distribution.high;
  if (distribution.kind == core::DistributionKind::normal) {
    out["mean"] = distribution.mean;
    out["stddev"] = distribution.stddev;
  } else if (distribution.kind == core::DistributionKind::triangular) {
    out["mode"] = distribution.mode;
  }
  return out;
}

core::ParamDistribution distribution_from_json(const Json& json) {
  core::check_known_keys(json, "distribution",
                         {"parameter", "kind", "low", "high", "mean", "stddev", "mode"});
  core::ParamDistribution distribution;
  distribution.parameter = json.string_or("parameter", "");
  if (distribution.parameter.empty()) {
    throw core::ConfigError("distribution entries need a \"parameter\" name");
  }
  // The named Table 1 range supplies the default support (and validates
  // the name): {"parameter": "E_des [GWh]"} alone is a complete entry.
  const std::vector<ParameterRange> known = table1_ranges();
  const auto range = std::find_if(known.begin(), known.end(), [&](const ParameterRange& r) {
    return r.name == distribution.parameter;
  });
  if (range == known.end()) {
    throw core::ConfigError("unknown distribution parameter \"" +
                            distribution.parameter + "\" (see table1_ranges)");
  }
  const std::string kind = json.string_or("kind", "uniform");
  const auto parsed_kind = core::parse_distribution_kind(kind);
  if (!parsed_kind) {
    throw core::ConfigError("distribution \"" + distribution.parameter +
                            "\": unknown kind \"" + kind +
                            "\" (uniform, normal, triangular)");
  }
  distribution.kind = *parsed_kind;
  const std::string context = "distribution \"" + distribution.parameter + "\"";
  // Kind-irrelevant fields are rejected, not ignored: a normal entry with
  // "kind" forgotten would otherwise silently sample uniform over the
  // full range and drop the author's mean/stddev.
  for (const std::string_view key : {"mean", "stddev"}) {
    if (distribution.kind != core::DistributionKind::normal && json.contains(key)) {
      throw core::ConfigError(context + ": \"" + std::string(key) +
                              "\" needs \"kind\": \"normal\"");
    }
  }
  if (distribution.kind != core::DistributionKind::triangular && json.contains("mode")) {
    throw core::ConfigError(context + ": \"mode\" needs \"kind\": \"triangular\"");
  }
  distribution.low = number_field_or(json, context, "low", range->low);
  distribution.high = number_field_or(json, context, "high", range->high);
  if (distribution.kind == core::DistributionKind::normal) {
    distribution.mean = number_field_or(json, context, "mean",
                                        0.5 * (distribution.low + distribution.high));
    distribution.stddev = number_field_or(json, context, "stddev",
                                          (distribution.high - distribution.low) / 4.0);
  } else if (distribution.kind == core::DistributionKind::triangular) {
    distribution.mode = number_field_or(json, context, "mode",
                                        0.5 * (distribution.low + distribution.high));
  }
  return distribution;
}

void params_to_json(const ScenarioSpec& spec, Json& out) {
  Json montecarlo = Json::object();
  montecarlo["samples"] = spec.montecarlo.samples;
  montecarlo["seed"] = static_cast<std::int64_t>(spec.montecarlo.seed);
  Json distributions = Json::array();
  for (const core::ParamDistribution& distribution : spec.montecarlo.distributions) {
    distributions.push_back(distribution_to_json(distribution));
  }
  montecarlo["distributions"] = std::move(distributions);
  Json percentiles = Json::array();
  for (const double p : spec.montecarlo.percentiles) {
    percentiles.push_back(p);
  }
  montecarlo["percentiles"] = std::move(percentiles);
  out["montecarlo"] = std::move(montecarlo);
}

void parse_params(const Json& json, ScenarioSpec& spec) {
  if (!json.contains("montecarlo")) {
    return;
  }
  const Json& entry = json.at("montecarlo");
  core::check_known_keys(entry, "montecarlo",
                         {"samples", "seed", "distributions", "percentiles"});
  MonteCarloUqSpec& montecarlo = spec.montecarlo;
  // Range-guarded integer reads (int_field_or rejects non-integral values
  // and out-of-range input instead of casting, which would be UB).
  montecarlo.samples = static_cast<int>(
      int_field_ctx(entry, "montecarlo", "samples", montecarlo.samples, 1,
                    10'000'000));
  montecarlo.seed = static_cast<unsigned>(
      int_field_ctx(entry, "montecarlo", "seed", montecarlo.seed, 0, 4294967295LL));
  if (entry.contains("distributions")) {
    montecarlo.distributions.clear();
    for (const Json& value : entry.at("distributions").as_array()) {
      montecarlo.distributions.push_back(distribution_from_json(value));
    }
  }
  if (entry.contains("percentiles")) {
    montecarlo.percentiles.clear();
    for (const Json& value : entry.at("percentiles").as_array()) {
      try {
        montecarlo.percentiles.push_back(value.as_number());
      } catch (const io::JsonError& error) {
        throw core::ConfigError("montecarlo.percentiles: " + std::string(error.what()));
      }
    }
  }
}

void validate(const ScenarioSpec& spec) {
  if (spec.montecarlo.samples < 1) {
    throw std::invalid_argument("ScenarioSpec '" + spec.name +
                                "': montecarlo needs at least one sample");
  }
  double previous = -1.0;
  for (const double p : spec.montecarlo.percentiles) {
    if (p < 0.0 || p > 100.0 || p <= previous) {
      throw std::invalid_argument(
          "ScenarioSpec '" + spec.name +
          "': montecarlo percentiles must be strictly increasing in [0, 100]");
    }
    previous = p;
  }
  validate_spec_distributions(spec);
}

/// Per-spec montecarlo context: the schedule plus each distribution's
/// Table 1 applier, bound by index so the plan stays movable.
struct McPlan {
  std::vector<ParameterRange> known;
  std::vector<std::size_t> applier_index;  ///< into `known`, one per distribution
  workload::Schedule schedule;
};

McPlan plan_montecarlo(const ScenarioSpec& spec) {
  McPlan plan;
  plan.schedule = spec.schedule.materialise(spec.domain);
  // Bind each distribution to its Table 1 applier by name (spec.validate()
  // has already rejected unknown names).
  plan.known = table1_ranges();
  plan.applier_index.reserve(spec.montecarlo.distributions.size());
  for (const core::ParamDistribution& distribution : spec.montecarlo.distributions) {
    for (std::size_t r = 0; r < plan.known.size(); ++r) {
      if (plan.known[r].name == distribution.parameter) {
        plan.applier_index.push_back(r);
        break;
      }
    }
  }
  return plan;
}

MonteCarloUq make_mc_skeleton(const ScenarioSpec& spec, std::size_t platforms) {
  MonteCarloUq uq;
  uq.samples = spec.montecarlo.samples;
  uq.percentiles = spec.montecarlo.percentiles;
  uq.sample_totals_kg.assign(
      platforms,
      std::vector<double>(static_cast<std::size_t>(spec.montecarlo.samples), 0.0));
  return uq;
}

/// Evaluate Monte-Carlo sample `i` into column i of `uq.sample_totals_kg`.
/// Sample i draws its parameter values from the counter stream
/// (seed, i, dimension) -- fully determined by the sample index, never by
/// which worker ran it or in what order.  Every sample re-parameterises
/// the suite, so the memoised per-worker model is useless here: each
/// sample builds its own LifecycleModel from the sampled suite.
void evaluate_mc_sample(const ScenarioSpec& spec, const McPlan& plan,
                        const core::ModelSuite& suite,
                        const std::vector<device::ChipSpec>& chips, std::size_t i,
                        MonteCarloUq& uq) {
  const MonteCarloUqSpec& mc = spec.montecarlo;
  core::ModelSuite sampled = suite;
  for (std::size_t j = 0; j < mc.distributions.size(); ++j) {
    const double u = core::counter_uniform01(mc.seed, i, j);
    plan.known[plan.applier_index[j]].apply(sampled, mc.distributions[j].sample(u));
  }
  const core::LifecycleModel model(sampled);
  for (std::size_t p = 0; p < chips.size(); ++p) {
    uq.sample_totals_kg[p][i] =
        model.evaluate(chips[p], plan.schedule).total.total().canonical();
  }
}

void execute(const KindRunContext& context, const core::ModelSuite& suite,
             ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  const McPlan plan = plan_montecarlo(spec);
  MonteCarloUq uq = make_mc_skeleton(spec, result.resolved_chips.size());

  // Shard samples across the pool: every sample writes to pre-sized slot
  // i, so results are bit-identical for any thread count.
  core::parallel_for_state(
      static_cast<std::size_t>(spec.montecarlo.samples), context.threads,
      [] { return 0; },
      [&](int& /*state*/, std::size_t i) {
        evaluate_mc_sample(spec, plan, suite, result.resolved_chips, i, uq);
      });

  // Serial reduction on the caller's thread (deterministic order).
  reduce_montecarlo(uq);
  result.uncertainty = std::move(uq);
}

KindBatchPlan plan_jobs(const core::ModelSuite& suite, ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  KindBatchPlan plan;
  plan.task_count = static_cast<std::size_t>(spec.montecarlo.samples);
  plan.uses_suite_model = false;  // every sample re-parameterises the suite
  result.uncertainty = make_mc_skeleton(spec, result.resolved_chips.size());
  auto mc = std::make_shared<const McPlan>(plan_montecarlo(spec));
  const core::ModelSuite* effective = &suite;  // outlives the plan (engine-owned)
  plan.run_job = [mc, effective](core::LifecycleModel* /*model*/, std::size_t index,
                                 ScenarioResult& out) {
    evaluate_mc_sample(out.spec, *mc, *effective, out.resolved_chips, index,
                       *out.uncertainty);
  };
  plan.assemble = [](ScenarioResult& out) { reduce_montecarlo(*out.uncertainty); };
  return plan;
}

void result_to_json(const ScenarioResult& result, Json& out) {
  if (!result.uncertainty) {
    return;
  }
  const MonteCarloUq& uq = *result.uncertainty;
  Json mc = Json::object();
  mc["samples"] = uq.samples;
  mc["percentiles"] = doubles_to_json(uq.percentiles);
  Json totals = Json::array();
  for (const UqStat& stat : uq.platform_total) {
    Json entry = Json::object();
    entry["mean"] = stat.mean;
    entry["stddev"] = stat.stddev;
    entry["percentile_values"] = doubles_to_json(stat.percentile_values);
    totals.push_back(std::move(entry));
  }
  mc["platform_total"] = std::move(totals);
  Json ratios = Json::array();
  for (const UqStat& stat : uq.ratio) {
    Json entry = Json::object();
    entry["mean"] = stat.mean;
    entry["stddev"] = stat.stddev;
    entry["percentile_values"] = doubles_to_json(stat.percentile_values);
    ratios.push_back(std::move(entry));
  }
  mc["ratio"] = std::move(ratios);
  mc["win_fraction"] = doubles_to_json(uq.win_fraction);
  Json samples = Json::array();
  for (const std::vector<double>& platform : uq.sample_totals_kg) {
    samples.push_back(doubles_to_json(platform));
  }
  mc["sample_totals_kg"] = std::move(samples);
  out["uncertainty"] = std::move(mc);
}

UqStat stat_from_json(const Json& json) {
  UqStat stat;
  stat.mean = json.at("mean").as_number_total();
  stat.stddev = json.at("stddev").as_number_total();
  stat.percentile_values = doubles_from_json(json.at("percentile_values"));
  return stat;
}

void result_from_json(const Json& json, ScenarioResult& result) {
  if (!json.contains("uncertainty")) {
    return;
  }
  const Json& mc = json.at("uncertainty");
  core::check_known_keys(mc, "result uncertainty",
                         {"samples", "percentiles", "platform_total", "ratio",
                          "win_fraction", "sample_totals_kg"});
  MonteCarloUq uq;
  uq.samples = static_cast<int>(mc.at("samples").as_int());
  uq.percentiles = doubles_from_json(mc.at("percentiles"));
  for (const Json& stat : mc.at("platform_total").as_array()) {
    uq.platform_total.push_back(stat_from_json(stat));
  }
  for (const Json& stat : mc.at("ratio").as_array()) {
    uq.ratio.push_back(stat_from_json(stat));
  }
  uq.win_fraction = doubles_from_json(mc.at("win_fraction"));
  for (const Json& platform : mc.at("sample_totals_kg").as_array()) {
    uq.sample_totals_kg.push_back(doubles_from_json(platform));
  }
  result.uncertainty = std::move(uq);
}

void to_frames(const ScenarioResult& result, std::vector<report::ResultFrame>& frames) {
  frames.push_back(uncertainty_frame(result));
}

bool render_text(const ScenarioResult& result,
                 std::span<const report::ResultFrame> frames, std::ostream& out) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << report::frame_to_table(frames[i]);
  }
  const MonteCarloUq& uq = *result.uncertainty;
  if (!uq.ratio.empty()) {
    std::vector<double> ratios = uq.ratio_samples(1);
    std::sort(ratios.begin(), ratios.end());
    out << report::render_cdf(ratios, result.platform_names[1] + ":" +
                                          result.platform_names[0] + " ratio");
  }
  return true;
}

bool sample_csv(const ScenarioSpec& /*spec*/) { return true; }

}  // namespace

const KindModule& montecarlo_module() {
  static const KindModule module{
      .kind = ScenarioKind::montecarlo,
      .name = "montecarlo",
      .aliases = kAliases,
      .summary = "uncertainty quantification: distribution-sampled inputs",
      .spec_keys = kSpecKeys,
      .seed_defaults = seed_defaults,
      .params_to_json = params_to_json,
      .parse_params = parse_params,
      .validate = validate,
      .execute = execute,
      .plan_jobs = plan_jobs,
      .result_keys = kResultKeys,
      .result_to_json = result_to_json,
      .result_from_json = result_from_json,
      .to_frames = to_frames,
      .render_text = render_text,
      .sample_csv = sample_csv,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
