/// \file frontier.cpp
/// The frontier kind: platform win-region DSE over 2-4 deployment axes,
/// with an optional Monte-Carlo win-confidence pass.

#include <array>
#include <stdexcept>
#include <utility>

#include "core/config_io.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

constexpr std::string_view kSpecKeys[] = {"frontier"};
constexpr std::string_view kResultKeys[] = {"frontier"};

void seed_defaults(ScenarioSpec& spec) {
  // Frontier default: the paper's two headline deployment axes at a
  // resolution that keeps `greenfpga frontier` on a minimal spec fast.
  spec.frontier.axes = {
      dse::FrontierAxisSpec::linear(dse::FrontierVariable::app_count, 1.0, 10.0, 10),
      dse::FrontierAxisSpec::log(dse::FrontierVariable::volume, 1e4, 1e7, 10),
  };
}

void params_to_json(const ScenarioSpec& spec, Json& out) {
  out["frontier"] = dse::frontier_spec_to_json(spec.frontier);
}

void parse_params(const Json& json, ScenarioSpec& spec) {
  if (!json.contains("frontier")) {
    return;
  }
  spec.frontier = dse::frontier_spec_from_json(json.at("frontier"), "frontier",
                                               std::move(spec.frontier));
}

void validate(const ScenarioSpec& spec) {
  require_homogeneous_schedule(spec);
  try {
    spec.frontier.validate();
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument("ScenarioSpec '" + spec.name + "': " + error.what());
  }
  // The frontier confidence pass samples the montecarlo distributions, so
  // it needs them validated exactly like the montecarlo kind.
  if (spec.frontier.confidence_samples > 0) {
    validate_spec_distributions(spec);
  }
}

void execute(const KindRunContext& context, const core::ModelSuite& suite,
             ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  dse::FrontierProblem problem;
  problem.frontier = spec.frontier;
  problem.platform_names = result.platform_names;
  problem.chips = result.resolved_chips;
  problem.suite = suite;
  problem.domain = spec.domain;
  problem.app_count = spec.schedule.app_count;
  problem.lifetime_years = spec.schedule.lifetime_years;
  problem.volume = spec.schedule.volume;
  problem.threads = context.threads;
  problem.retarget = [](const device::ChipSpec& chip, tech::ProcessNode node) {
    return retarget_to_node(chip, node);
  };
  if (spec.frontier.confidence_samples > 0) {
    // Bind each montecarlo distribution to its Table 1 applier by name
    // (spec.validate() has already rejected unknown names), exactly like
    // the montecarlo kind.
    const std::vector<ParameterRange> known = table1_ranges();
    for (const core::ParamDistribution& distribution : spec.montecarlo.distributions) {
      for (const ParameterRange& range : known) {
        if (range.name == distribution.parameter) {
          problem.sampled.push_back(
              dse::SampledParameter{.distribution = distribution, .apply = range.apply});
          break;
        }
      }
    }
  }
  result.frontier = dse::FrontierSearch(std::move(problem)).run();
}

void result_to_json(const ScenarioResult& result, Json& out) {
  if (!result.frontier) {
    return;
  }
  // The payload's spec and platform names are the result's own (the
  // engine builds the problem from them), so only the search output is
  // serialized; the reader reconstructs the rest.
  const dse::FrontierResult& fr = *result.frontier;
  Json frontier = Json::object();
  Json axes = Json::array();
  for (const std::vector<double>& values : fr.axis_values) {
    axes.push_back(doubles_to_json(values));
  }
  frontier["axis_values"] = std::move(axes);
  Json cells = Json::array();
  for (const dse::FrontierCell& cell : fr.cells) {
    Json entry = Json::object();
    entry["coords"] = doubles_to_json(cell.coords);
    entry["objective_kg"] = doubles_to_json(cell.objective_kg);
    entry["winner"] = cell.winner;
    entry["margin"] = cell.margin;
    entry["confidence"] = cell.confidence;
    cells.push_back(std::move(entry));
  }
  frontier["cells"] = std::move(cells);
  Json wins = Json::array();
  for (const std::size_t count : fr.win_counts) {
    wins.push_back(static_cast<int>(count));
  }
  frontier["win_counts"] = std::move(wins);
  frontier["win_fraction"] = doubles_to_json(fr.win_fraction);
  frontier["infeasible_cells"] = static_cast<int>(fr.infeasible_cells);
  Json slices = Json::array();
  for (const dse::FrontierSlice& slice : fr.slices) {
    Json entry = Json::object();
    entry["axis"] = static_cast<int>(slice.axis);
    entry["value"] = slice.value;
    entry["win_fraction"] = doubles_to_json(slice.win_fraction);
    slices.push_back(std::move(entry));
  }
  frontier["slices"] = std::move(slices);
  Json boundaries = Json::array();
  for (const dse::FrontierBoundary& boundary : fr.boundaries) {
    Json entry = Json::object();
    entry["platform_a"] = boundary.platform_a;
    entry["platform_b"] = boundary.platform_b;
    Json points = Json::array();
    for (const std::array<double, 2>& point : boundary.points) {
      Json pt = Json::array();
      pt.push_back(point[0]);
      pt.push_back(point[1]);
      points.push_back(std::move(pt));
    }
    entry["points"] = std::move(points);
    boundaries.push_back(std::move(entry));
  }
  frontier["boundaries"] = std::move(boundaries);
  frontier["confidence_samples"] = fr.confidence_samples;
  out["frontier"] = std::move(frontier);
}

void result_from_json(const Json& json, ScenarioResult& result) {
  if (!json.contains("frontier")) {
    return;
  }
  const Json& frontier = json.at("frontier");
  core::check_known_keys(frontier, "result frontier",
                         {"axis_values", "cells", "win_counts", "win_fraction",
                          "infeasible_cells", "slices", "boundaries",
                          "confidence_samples"});
  dse::FrontierResult fr;
  fr.spec = result.spec.frontier;
  fr.platform_names = result.platform_names;
  for (const Json& values : frontier.at("axis_values").as_array()) {
    fr.axis_values.push_back(doubles_from_json(values));
  }
  for (const Json& entry : frontier.at("cells").as_array()) {
    core::check_known_keys(entry, "result frontier cell",
                           {"coords", "objective_kg", "winner", "margin",
                            "confidence"});
    dse::FrontierCell cell;
    cell.coords = doubles_from_json(entry.at("coords"));
    cell.objective_kg = doubles_from_json(entry.at("objective_kg"));
    cell.winner = static_cast<int>(entry.at("winner").as_int());
    cell.margin = entry.at("margin").as_number_total();
    cell.confidence = entry.at("confidence").as_number_total();
    fr.cells.push_back(std::move(cell));
  }
  for (const Json& count : frontier.at("win_counts").as_array()) {
    fr.win_counts.push_back(static_cast<std::size_t>(count.as_int()));
  }
  fr.win_fraction = doubles_from_json(frontier.at("win_fraction"));
  fr.infeasible_cells =
      static_cast<std::size_t>(frontier.at("infeasible_cells").as_int());
  for (const Json& entry : frontier.at("slices").as_array()) {
    core::check_known_keys(entry, "result frontier slice",
                           {"axis", "value", "win_fraction"});
    dse::FrontierSlice slice;
    slice.axis = static_cast<std::size_t>(entry.at("axis").as_int());
    slice.value = entry.at("value").as_number_total();
    slice.win_fraction = doubles_from_json(entry.at("win_fraction"));
    fr.slices.push_back(std::move(slice));
  }
  for (const Json& entry : frontier.at("boundaries").as_array()) {
    core::check_known_keys(entry, "result frontier boundary",
                           {"platform_a", "platform_b", "points"});
    dse::FrontierBoundary boundary;
    boundary.platform_a = static_cast<int>(entry.at("platform_a").as_int());
    boundary.platform_b = static_cast<int>(entry.at("platform_b").as_int());
    for (const Json& point : entry.at("points").as_array()) {
      const std::vector<double> xy = doubles_from_json(point);
      if (xy.size() != 2) {
        throw std::invalid_argument(
            "result frontier boundary point needs exactly two coordinates");
      }
      boundary.points.push_back({xy[0], xy[1]});
    }
    fr.boundaries.push_back(std::move(boundary));
  }
  fr.confidence_samples =
      static_cast<int>(frontier.at("confidence_samples").as_int());
  result.frontier = std::move(fr);
}

/// One row per frontier cell: coordinates, per-platform objectives, the
/// winner and its margin, plus the Monte-Carlo win confidence.
ResultFrame frontier_cells_frame(const ScenarioResult& result) {
  const dse::FrontierResult& frontier = *result.frontier;
  ResultFrame frame;
  frame.name = "frontier";
  for (const dse::FrontierAxisSpec& axis : frontier.spec.axes) {
    frame.columns.push_back(Column{.name = axis.label(), .unit = "", .precision = 4});
  }
  for (const std::string& platform : result.platform_names) {
    frame.columns.push_back(Column{.name = platform, .unit = "t CO2e", .precision = 5});
  }
  frame.columns.push_back(Column{.name = "winner", .unit = "", .precision = 4});
  frame.columns.push_back(Column{.name = "margin", .unit = "", .precision = 4});
  frame.columns.push_back(Column{.name = "confidence", .unit = "", .precision = 4});
  for (const dse::FrontierCell& cell : frontier.cells) {
    std::vector<Cell> row;
    row.reserve(frame.columns.size());
    for (const double c : cell.coords) {
      row.emplace_back(c);
    }
    for (const double objective : cell.objective_kg) {
      row.emplace_back(objective / kKgPerTonne);
    }
    row.emplace_back(cell.winner >= 0
                         ? result.platform_names[static_cast<std::size_t>(cell.winner)]
                         : std::string("-"));
    row.emplace_back(cell.margin);
    row.emplace_back(cell.confidence);
    frame.add_row(std::move(row));
  }
  frame.set_meta("objective", to_string(frontier.spec.objective));
  if (frontier.confidence_samples > 0) {
    frame.set_meta("confidence",
                   std::to_string(frontier.confidence_samples) + " samples, seed " +
                       std::to_string(frontier.spec.seed));
  }
  return frame;
}

/// One row per platform: its win count and overall win fraction.
ResultFrame frontier_summary_frame(const ScenarioResult& result) {
  const dse::FrontierResult& frontier = *result.frontier;
  ResultFrame frame;
  frame.name = "frontier_summary";
  frame.columns = {Column{.name = "platform", .unit = "", .precision = 4},
                   Column{.name = "cells won", .unit = "", .precision = 6},
                   Column{.name = "win fraction", .unit = "", .precision = 4}};
  for (std::size_t p = 0; p < result.platform_names.size(); ++p) {
    frame.add_row({Cell(result.platform_names[p]),
                   Cell(static_cast<double>(frontier.win_counts[p])),
                   Cell(frontier.win_fraction[p])});
  }
  if (frontier.infeasible_cells > 0) {
    frame.set_meta("infeasible cells", std::to_string(frontier.infeasible_cells));
  }
  return frame;
}

/// One row per breakeven boundary point (2-axis frontiers only).
ResultFrame frontier_boundaries_frame(const ScenarioResult& result) {
  const dse::FrontierResult& frontier = *result.frontier;
  ResultFrame frame;
  frame.name = "frontier_boundaries";
  frame.columns = {Column{.name = "between", .unit = "", .precision = 4},
                   Column{.name = frontier.spec.axes[0].label(), .unit = "",
                          .precision = 5},
                   Column{.name = frontier.spec.axes[1].label(), .unit = "",
                          .precision = 5}};
  for (const dse::FrontierBoundary& boundary : frontier.boundaries) {
    const std::string pair =
        result.platform_names[static_cast<std::size_t>(boundary.platform_a)] + "|" +
        result.platform_names[static_cast<std::size_t>(boundary.platform_b)];
    for (const std::array<double, 2>& point : boundary.points) {
      frame.add_row({Cell(pair), Cell(point[0]), Cell(point[1])});
    }
  }
  return frame;
}

void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  frames.push_back(frontier_cells_frame(result));
  frames.push_back(frontier_summary_frame(result));
  if (!result.frontier->boundaries.empty()) {
    frames.push_back(frontier_boundaries_frame(result));
  }
}

}  // namespace

const KindModule& frontier_module() {
  static const KindModule module{
      .kind = ScenarioKind::frontier,
      .name = "frontier",
      .summary = "platform win-region DSE over 2-4 deployment axes",
      .spec_keys = kSpecKeys,
      .seed_defaults = seed_defaults,
      .params_to_json = params_to_json,
      .parse_params = parse_params,
      .validate = validate,
      .execute = execute,
      .result_keys = kResultKeys,
      .result_to_json = result_to_json,
      .result_from_json = result_from_json,
      .to_frames = to_frames,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
