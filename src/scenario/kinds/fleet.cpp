/// \file fleet.cpp
/// The fleet kind: a mixed-platform datacenter serving a 24-hour traffic
/// trace across regions with distinct grid profiles (see
/// scenario/fleet.hpp for the simulation; this module is its registry
/// binding).  The first kind born registry-native: no generic layer names
/// it.

#include <optional>
#include <span>
#include <stdexcept>
#include <utility>

#include "report/figure_writer.hpp"
#include "scenario/fleet.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"
#include "units/format.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;
using report::Cell;
using report::Column;
using report::ResultFrame;

constexpr std::string_view kSpecKeys[] = {"fleet"};
constexpr std::string_view kResultKeys[] = {"fleet"};

void seed_defaults(ScenarioSpec& spec) {
  // Unlike the always-emitted kind sections, `fleet` is conditional (like
  // grid_profile): seeding it unconditionally would change every existing
  // spec's canonical bytes.
  if (spec.kind == ScenarioKind::fleet && !spec.fleet) {
    spec.fleet = default_fleet_spec();
  }
}

void params_to_json(const ScenarioSpec& spec, Json& out) {
  if (spec.fleet) {
    out["fleet"] = fleet_spec_to_json(*spec.fleet);
  }
}

void parse_params(const Json& json, ScenarioSpec& spec) {
  if (!json.contains("fleet")) {
    return;
  }
  spec.fleet = fleet_spec_from_json(json.at("fleet"),
                                    spec.fleet ? *spec.fleet : default_fleet_spec());
}

void validate(const ScenarioSpec& spec) {
  if (!spec.fleet) {
    throw std::invalid_argument(
        "ScenarioSpec '" + spec.name +
        "': fleet kind needs a fleet section (ScenarioSpec::make seeds the default)");
  }
  require_homogeneous_schedule(spec);
  spec.fleet->validate(spec.name);
  // Fleet Monte-Carlo samples the spec's montecarlo.distributions, so
  // they need the same validation as the montecarlo kind.
  if (spec.fleet->mc_samples > 0) {
    validate_spec_distributions(spec);
  }
}

/// A datacenter mixes dedicated and reconfigurable silicon; the paper's
/// three-way comparison is the natural default fleet.
std::vector<PlatformRef> default_platforms() {
  return {PlatformRef{.name = "asic", .chip = std::nullopt},
          PlatformRef{.name = "fpga", .chip = std::nullopt},
          PlatformRef{.name = "gpu", .chip = std::nullopt}};
}

void execute(const KindRunContext& context, const core::ModelSuite& suite,
             ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  const FleetSpec& fleet = *spec.fleet;
  result.fleet = simulate_fleet(fleet, spec.domain, suite, result.resolved_chips);
  if (fleet.mc_samples <= 0) {
    return;
  }

  // Monte-Carlo over the spec's Table 1 distributions: sample i draws
  // from the counter stream (seed, i, dimension), re-simulates the whole
  // fleet on the sampled suite, and writes pre-sized slot i -- the same
  // bit-identical-for-any-thread-count contract as the montecarlo kind.
  const MonteCarloUqSpec& mc = spec.montecarlo;
  const auto samples = static_cast<std::size_t>(fleet.mc_samples);
  MonteCarloUq uq;
  uq.samples = fleet.mc_samples;
  uq.percentiles = mc.percentiles;
  uq.sample_totals_kg.assign(result.resolved_chips.size(),
                             std::vector<double>(samples, 0.0));
  const std::vector<ParameterRange> known = table1_ranges();
  std::vector<std::size_t> applier_index;
  applier_index.reserve(mc.distributions.size());
  for (const core::ParamDistribution& distribution : mc.distributions) {
    for (std::size_t r = 0; r < known.size(); ++r) {
      if (known[r].name == distribution.parameter) {
        applier_index.push_back(r);
        break;
      }
    }
  }
  core::parallel_for_state(
      samples, context.threads, [] { return 0; },
      [&](int& /*state*/, std::size_t i) {
        core::ModelSuite sampled = suite;
        for (std::size_t j = 0; j < mc.distributions.size(); ++j) {
          const double u = core::counter_uniform01(mc.seed, i, j);
          known[applier_index[j]].apply(sampled, mc.distributions[j].sample(u));
        }
        const FleetResult sample =
            simulate_fleet(fleet, spec.domain, sampled, result.resolved_chips);
        for (std::size_t p = 0; p < sample.groups.size(); ++p) {
          uq.sample_totals_kg[p][i] = sample.groups[p].total.total().canonical();
        }
      });
  reduce_montecarlo(uq);
  result.uncertainty = std::move(uq);
}

void result_to_json(const ScenarioResult& result, Json& out) {
  if (result.fleet) {
    out["fleet"] = fleet_result_to_json(*result.fleet);
  }
}

void result_from_json(const Json& json, ScenarioResult& result) {
  if (json.contains("fleet")) {
    result.fleet = fleet_result_from_json(json.at("fleet"));
  }
}

/// One row per platform: the shared breakdown-component layout plus the
/// fleet sizing columns and the baseline ratio.
ResultFrame fleet_frame(const ScenarioResult& result) {
  const FleetResult& fleet = *result.fleet;
  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  rows.reserve(fleet.groups.size());
  for (std::size_t i = 0; i < fleet.groups.size(); ++i) {
    rows.emplace_back(result.platform_names[i], fleet.groups[i].total);
  }
  ResultFrame frame = report::breakdown_frame("fleet", rows);
  frame.columns.push_back(Column{.name = "units", .unit = "", .precision = 6});
  frame.columns.push_back(Column{.name = "reconfig factor", .unit = "", .precision = 4});
  frame.columns.push_back(Column{.name = "vs " + result.platform_names[0], .unit = "",
                                 .precision = 4});
  const double baseline = fleet.groups.front().total.total().canonical();
  for (std::size_t i = 0; i < frame.rows.size(); ++i) {
    frame.rows[i].emplace_back(fleet.groups[i].units);
    frame.rows[i].emplace_back(fleet.groups[i].reconfig_factor);
    frame.rows[i].emplace_back(fleet.groups[i].total.total().canonical() / baseline);
  }
  frame.set_meta("peak demand",
                 units::format_significant(fleet.peak_units, 6) + " units");
  return frame;
}

/// One row per region: its profile, fleet share, and the demand-weighted
/// intensity multiplier the simulation derived for it.
ResultFrame fleet_regions_frame(const ScenarioResult& result) {
  const FleetResult& fleet = *result.fleet;
  ResultFrame frame;
  frame.name = "fleet_regions";
  frame.columns = {Column{.name = "region", .unit = "", .precision = 4},
                   Column{.name = "profile", .unit = "", .precision = 4},
                   Column{.name = "weight", .unit = "", .precision = 4},
                   Column{.name = "intensity multiplier", .unit = "", .precision = 5}};
  const std::vector<FleetRegionSpec>& regions = result.spec.fleet->regions;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    frame.add_row({Cell(regions[r].name), Cell(regions[r].profile),
                   Cell(regions[r].weight), Cell(fleet.region_multipliers[r])});
  }
  return frame;
}

void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  frames.push_back(fleet_frame(result));
  frames.push_back(fleet_regions_frame(result));
  if (result.uncertainty) {
    frames.push_back(uncertainty_frame(result));
  }
}

bool sample_csv(const ScenarioSpec& spec) {
  return spec.fleet && spec.fleet->mc_samples > 0;
}

}  // namespace

const KindModule& fleet_module() {
  static const KindModule module{
      .kind = ScenarioKind::fleet,
      .name = "fleet",
      .summary = "mixed-platform datacenter serving a traffic trace",
      .spec_keys = kSpecKeys,
      .seed_defaults = seed_defaults,
      .params_to_json = params_to_json,
      .parse_params = parse_params,
      .validate = validate,
      .default_platforms = default_platforms,
      .execute = execute,
      .result_keys = kResultKeys,
      .result_to_json = result_to_json,
      .result_from_json = result_from_json,
      .to_frames = to_frames,
      .sample_csv = sample_csv,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
