/// \file compare.cpp
/// The compare kind: one evaluation point, all platforms head-to-head.
/// Also owns the shared "points" result section, which sweep and grid
/// results reuse (the result hooks run for every module on every result).

#include <utility>

#include "core/config_io.hpp"
#include "report/figure_writer.hpp"
#include "scenario/kinds/common.hpp"
#include "scenario/kinds/modules.hpp"
#include "units/format.hpp"

namespace greenfpga::scenario::kinds {

namespace {

using io::Json;
using report::Column;
using report::ResultFrame;

constexpr std::string_view kResultKeys[] = {"points"};

void execute(const KindRunContext& context, const core::ModelSuite& suite,
             ScenarioResult& result) {
  points_execute(context, suite, result);
}

void result_to_json(const ScenarioResult& result, Json& out) {
  if (result.points.empty()) {
    return;
  }
  Json points = Json::array();
  for (const EvalPoint& point : result.points) {
    Json entry = Json::object();
    entry["coords"] = doubles_to_json(point.coords);
    Json evaluated = Json::array();
    for (const core::PlatformCfp& platform : point.platforms) {
      evaluated.push_back(core::to_json(platform));
    }
    entry["platforms"] = std::move(evaluated);
    points.push_back(std::move(entry));
  }
  out["points"] = std::move(points);
}

void result_from_json(const Json& json, ScenarioResult& result) {
  if (!json.contains("points")) {
    return;
  }
  for (const Json& entry : json.at("points").as_array()) {
    core::check_known_keys(entry, "result point", {"coords", "platforms"});
    EvalPoint point;
    point.coords = doubles_from_json(entry.at("coords"));
    for (const Json& platform : entry.at("platforms").as_array()) {
      point.platforms.push_back(core::platform_cfp_from_json(platform));
    }
    result.points.push_back(std::move(point));
  }
}

/// Breakdown-component frame of a compare result: the shared
/// `report::breakdown_frame` layout (one row per platform, one component
/// column each) plus a baseline-ratio column, so compare and `industry`
/// speak identical column names.
void to_frames(const ScenarioResult& result, std::vector<ResultFrame>& frames) {
  const EvalPoint& point = result.points.front();
  std::vector<std::pair<std::string, core::CfpBreakdown>> rows;
  rows.reserve(point.platforms.size());
  for (std::size_t i = 0; i < point.platforms.size(); ++i) {
    rows.emplace_back(result.platform_names[i], point.platforms[i].total);
  }
  ResultFrame frame = report::breakdown_frame("platforms", rows);
  frame.columns.push_back(Column{.name = "vs " + result.platform_names[0], .unit = "",
                                 .precision = 4});
  for (std::size_t i = 0; i < frame.rows.size(); ++i) {
    frame.rows[i].emplace_back(point.ratio(i));
  }
  for (std::size_t i = 1; i < result.platform_names.size(); ++i) {
    frame.set_meta(ratio_label(result, i) + " ratio",
                   units::format_significant(point.ratio(i), 4));
  }
  frames.push_back(std::move(frame));
}

}  // namespace

const KindModule& compare_module() {
  static const KindModule module{
      .kind = ScenarioKind::compare,
      .name = "compare",
      .summary = "one evaluation point, all platforms head-to-head",
      .execute = execute,
      .plan_jobs = points_plan_jobs,
      .result_keys = kResultKeys,
      .result_to_json = result_to_json,
      .result_from_json = result_from_json,
      .to_frames = to_frames,
  };
  return module;
}

}  // namespace greenfpga::scenario::kinds
