/// \file breakeven.cpp
/// Closed-form crossover solvers from two model probes per platform.
///
/// The solves live in free functions (the engine primitives); the legacy
/// `BreakevenSolver` builds breakeven-kind specs and runs them through
/// `scenario::Engine`, which dispatches back to the free functions.

#include "scenario/breakeven.hpp"

#include <cmath>
#include <stdexcept>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "scenario/engine.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

/// Root of the affine function through (x1, y1) and (x2, y2); nullopt for
/// (numerically) parallel-to-axis lines or non-positive roots.
std::optional<double> affine_root(double x1, double y1, double x2, double y2) {
  const double slope = (y2 - y1) / (x2 - x1);
  const double scale = std::max(std::fabs(y1), std::fabs(y2));
  if (scale == 0.0) {
    return std::nullopt;  // identical platforms: no directional crossing
  }
  if (std::fabs(slope) * std::fabs(x2 - x1) < 1e-12 * scale) {
    return std::nullopt;  // flat difference: no root
  }
  const double root = x1 - y1 / slope;
  if (!std::isfinite(root) || root <= 0.0) {
    return std::nullopt;
  }
  return root;
}

/// FPGA-minus-ASIC total at an explicit point.
double difference(const core::LifecycleModel& model,
                  const device::DomainTestcase& testcase, int app_count,
                  units::TimeSpan lifetime, double volume) {
  const workload::Schedule schedule =
      core::paper_schedule(testcase.domain, app_count, lifetime, volume);
  const core::Comparison comparison = core::compare(model, testcase, schedule);
  return comparison.fpga.total.total().canonical() -
         comparison.asic.total.total().canonical();
}

/// Affinity precondition: one-time app-dev accounting.
void require_one_time_accounting(const core::LifecycleModel& model) {
  if (model.suite().appdev.accounting != core::AppDevAccounting::one_time) {
    throw std::invalid_argument(
        "BreakevenSolver: per-year accounting makes totals bilinear in (T, N_app); "
        "use the sweep engine instead");
  }
}

/// Validity guard: the schedule must fit one FPGA service life.
void require_single_fleet(const device::DomainTestcase& testcase, int app_count,
                          units::TimeSpan lifetime) {
  const double horizon_years =
      static_cast<double>(app_count) * lifetime.in(units::unit::years);
  const double service_years = testcase.fpga.service_life.in(units::unit::years);
  if (horizon_years > service_years + 1e-9) {
    throw std::invalid_argument(
        "BreakevenSolver: schedule exceeds one FPGA service life (" +
        std::to_string(horizon_years) + " > " + std::to_string(service_years) +
        " years); affinity breaks at fleet replacement -- use TimelineSimulator");
  }
}

/// Spec skeleton for the solver shims.
ScenarioSpec breakeven_spec(const core::LifecycleModel& model,
                            const device::DomainTestcase& testcase,
                            const BreakevenContext& context) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::breakeven;
  spec.domain = testcase.domain;
  spec.suite = model.suite();
  spec.platforms = {PlatformRef{.name = "asic", .chip = testcase.asic},
                    PlatformRef{.name = "fpga", .chip = testcase.fpga}};
  spec.schedule.app_count = context.app_count;
  spec.schedule.lifetime_years = context.app_lifetime.in(units::unit::years);
  spec.schedule.volume = context.app_volume;
  spec.breakeven = BreakevenSpec{.solve_app_count = false,
                                 .solve_lifetime = false,
                                 .solve_volume = false};
  return spec;
}

}  // namespace

std::optional<double> solve_app_count_breakeven(const core::LifecycleModel& model,
                                                const device::DomainTestcase& testcase,
                                                const BreakevenContext& context) {
  require_one_time_accounting(model);
  require_single_fleet(testcase, /*app_count=*/2, context.app_lifetime);
  const double y1 = difference(model, testcase, 1, context.app_lifetime, context.app_volume);
  const double y2 = difference(model, testcase, 2, context.app_lifetime, context.app_volume);
  const std::optional<double> root = affine_root(1.0, y1, 2.0, y2);
  // Schedules start at one application: a root below 1 means one platform
  // dominates over the whole meaningful range.
  if (root && *root < 1.0) {
    return std::nullopt;
  }
  return root;
}

std::optional<double> solve_lifetime_breakeven(const core::LifecycleModel& model,
                                               const device::DomainTestcase& testcase,
                                               const BreakevenContext& context) {
  using units::unit::years;
  require_one_time_accounting(model);
  require_single_fleet(testcase, context.app_count, 2.0 * years);
  const double y1 =
      difference(model, testcase, context.app_count, 1.0 * years, context.app_volume);
  const double y2 =
      difference(model, testcase, context.app_count, 2.0 * years, context.app_volume);
  return affine_root(1.0, y1, 2.0, y2);
}

std::optional<double> solve_volume_breakeven(const core::LifecycleModel& model,
                                             const device::DomainTestcase& testcase,
                                             const BreakevenContext& context) {
  require_one_time_accounting(model);
  require_single_fleet(testcase, context.app_count, context.app_lifetime);
  const double v1 = 1e5;
  const double v2 = 1e6;
  const double y1 = difference(model, testcase, context.app_count, context.app_lifetime, v1);
  const double y2 = difference(model, testcase, context.app_count, context.app_lifetime, v2);
  return affine_root(v1, y1, v2, y2);
}

BreakevenSolver::BreakevenSolver(core::LifecycleModel model, device::DomainTestcase testcase)
    : model_(std::move(model)), testcase_(std::move(testcase)) {
  require_one_time_accounting(model_);
}

std::optional<double> BreakevenSolver::app_count_breakeven(
    const BreakevenContext& context) const {
  ScenarioSpec spec = breakeven_spec(model_, testcase_, context);
  spec.breakeven.solve_app_count = true;
  return Engine().run(spec).breakeven->app_count;
}

std::optional<double> BreakevenSolver::lifetime_breakeven(
    const BreakevenContext& context) const {
  ScenarioSpec spec = breakeven_spec(model_, testcase_, context);
  spec.breakeven.solve_lifetime = true;
  return Engine().run(spec).breakeven->lifetime_years;
}

std::optional<double> BreakevenSolver::volume_breakeven(
    const BreakevenContext& context) const {
  ScenarioSpec spec = breakeven_spec(model_, testcase_, context);
  spec.breakeven.solve_volume = true;
  return Engine().run(spec).breakeven->volume;
}

}  // namespace greenfpga::scenario
