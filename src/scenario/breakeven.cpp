/// \file breakeven.cpp
/// Closed-form crossover solvers from two model probes per platform.

#include "scenario/breakeven.hpp"

#include <cmath>
#include <stdexcept>

#include "core/comparator.hpp"
#include "core/paper_config.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

/// Root of the affine function through (x1, y1) and (x2, y2); nullopt for
/// (numerically) parallel-to-axis lines or non-positive roots.
std::optional<double> affine_root(double x1, double y1, double x2, double y2) {
  const double slope = (y2 - y1) / (x2 - x1);
  const double scale = std::max(std::fabs(y1), std::fabs(y2));
  if (scale == 0.0) {
    return std::nullopt;  // identical platforms: no directional crossing
  }
  if (std::fabs(slope) * std::fabs(x2 - x1) < 1e-12 * scale) {
    return std::nullopt;  // flat difference: no root
  }
  const double root = x1 - y1 / slope;
  if (!std::isfinite(root) || root <= 0.0) {
    return std::nullopt;
  }
  return root;
}

}  // namespace

BreakevenSolver::BreakevenSolver(core::LifecycleModel model, device::DomainTestcase testcase)
    : model_(std::move(model)), testcase_(std::move(testcase)) {
  if (model_.suite().appdev.accounting != core::AppDevAccounting::one_time) {
    throw std::invalid_argument(
        "BreakevenSolver: per-year accounting makes totals bilinear in (T, N_app); "
        "use the sweep engine instead");
  }
}

double BreakevenSolver::difference(int app_count, units::TimeSpan lifetime,
                                   double volume) const {
  const workload::Schedule schedule =
      core::paper_schedule(testcase_.domain, app_count, lifetime, volume);
  const core::Comparison comparison = core::compare(model_, testcase_, schedule);
  return comparison.fpga.total.total().canonical() -
         comparison.asic.total.total().canonical();
}

void BreakevenSolver::require_single_fleet(int app_count, units::TimeSpan lifetime) const {
  const double horizon_years =
      static_cast<double>(app_count) * lifetime.in(units::unit::years);
  const double service_years = testcase_.fpga.service_life.in(units::unit::years);
  if (horizon_years > service_years + 1e-9) {
    throw std::invalid_argument(
        "BreakevenSolver: schedule exceeds one FPGA service life (" +
        std::to_string(horizon_years) + " > " + std::to_string(service_years) +
        " years); affinity breaks at fleet replacement -- use TimelineSimulator");
  }
}

std::optional<double> BreakevenSolver::app_count_breakeven(
    const BreakevenContext& context) const {
  require_single_fleet(/*app_count=*/2, context.app_lifetime);
  const double y1 = difference(1, context.app_lifetime, context.app_volume);
  const double y2 = difference(2, context.app_lifetime, context.app_volume);
  const std::optional<double> root = affine_root(1.0, y1, 2.0, y2);
  // Schedules start at one application: a root below 1 means one platform
  // dominates over the whole meaningful range.
  if (root && *root < 1.0) {
    return std::nullopt;
  }
  return root;
}

std::optional<double> BreakevenSolver::lifetime_breakeven(
    const BreakevenContext& context) const {
  using units::unit::years;
  require_single_fleet(context.app_count, 2.0 * years);
  const double y1 = difference(context.app_count, 1.0 * years, context.app_volume);
  const double y2 = difference(context.app_count, 2.0 * years, context.app_volume);
  return affine_root(1.0, y1, 2.0, y2);
}

std::optional<double> BreakevenSolver::volume_breakeven(
    const BreakevenContext& context) const {
  require_single_fleet(context.app_count, context.app_lifetime);
  const double v1 = 1e5;
  const double v2 = 1e6;
  const double y1 = difference(context.app_count, context.app_lifetime, v1);
  const double y2 = difference(context.app_count, context.app_lifetime, v2);
  return affine_root(v1, y1, v2, y2);
}

}  // namespace greenfpga::scenario
