/// \file fleet.cpp
/// Fleet sizing, regional demand-weighted intensity, and the JSON forms.

#include "scenario/fleet.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "act/grid_profile.hpp"
#include "core/config_io.hpp"
#include "core/paper_config.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

namespace {

using io::Json;

constexpr int kHours = 24;

act::DailyProfile profile_by_name(const std::string& name) {
  if (name == "uniform") {
    return act::DailyProfile();
  }
  if (name == "solar_duck") {
    return act::DailyProfile::solar_duck();
  }
  if (name == "windy_night") {
    return act::DailyProfile::windy_night();
  }
  throw std::invalid_argument("fleet: unknown region profile '" + name +
                              "' (uniform, solar_duck, windy_night)");
}

double trace_at(const FleetServiceSpec& service, int hour) {
  return service.trace.empty() ? 1.0
                               : service.trace[static_cast<std::size_t>(hour)];
}

/// Per-hour demand of one service, in accelerator units.
double demand_at(const FleetServiceSpec& service, int hour) {
  return service.peak_load * trace_at(service, hour);
}

}  // namespace

void FleetSpec::validate(const std::string& scenario_name) const {
  const std::string prefix = "ScenarioSpec '" + scenario_name + "': fleet ";
  if (regions.empty()) {
    throw std::invalid_argument(prefix + "needs at least one region");
  }
  if (services.empty()) {
    throw std::invalid_argument(prefix + "needs at least one service");
  }
  for (const FleetRegionSpec& region : regions) {
    if (region.name.empty()) {
      throw std::invalid_argument(prefix + "region names must be non-empty");
    }
    if (region.profile != "uniform" && region.profile != "solar_duck" &&
        region.profile != "windy_night") {
      throw std::invalid_argument(prefix + "region \"" + region.name +
                                  "\" has unknown profile \"" + region.profile +
                                  "\" (uniform, solar_duck, windy_night)");
    }
    if (!(region.weight > 0.0)) {
      throw std::invalid_argument(prefix + "region \"" + region.name +
                                  "\" needs weight > 0");
    }
    if (!(region.intensity_scale > 0.0)) {
      throw std::invalid_argument(prefix + "region \"" + region.name +
                                  "\" needs intensity_scale > 0");
    }
  }
  for (const FleetServiceSpec& service : services) {
    if (service.name.empty()) {
      throw std::invalid_argument(prefix + "service names must be non-empty");
    }
    if (!(service.peak_load > 0.0)) {
      throw std::invalid_argument(prefix + "service \"" + service.name +
                                  "\" needs peak_load > 0");
    }
    if (!service.trace.empty() && service.trace.size() != kHours) {
      throw std::invalid_argument(prefix + "service \"" + service.name +
                                  "\" trace needs exactly 24 hourly entries, got " +
                                  std::to_string(service.trace.size()));
    }
    double peak = service.trace.empty() ? 1.0 : 0.0;
    for (const double multiplier : service.trace) {
      if (!(multiplier >= 0.0) || multiplier > 1.0) {
        throw std::invalid_argument(prefix + "service \"" + service.name +
                                    "\" trace multipliers must be in [0, 1]");
      }
      peak = std::max(peak, multiplier);
    }
    if (!(peak > 0.0)) {
      throw std::invalid_argument(prefix + "service \"" + service.name +
                                  "\" trace must reach a non-zero peak");
    }
  }
  if (!(horizon_years > 0.0)) {
    throw std::invalid_argument(prefix + "horizon_years must be positive");
  }
  if (!(utilization > 0.0) || utilization > 1.0) {
    throw std::invalid_argument(prefix + "utilization must be in (0, 1]");
  }
  if (!(reconfig_overhead_hours >= 0.0)) {
    throw std::invalid_argument(prefix + "reconfig_overhead_hours must be >= 0");
  }
  if (mc_samples < 0) {
    throw std::invalid_argument(prefix + "mc_samples must be >= 0");
  }
}

FleetSpec default_fleet_spec() {
  FleetSpec fleet;
  fleet.regions = {
      FleetRegionSpec{.name = "solar-west",
                      .profile = "solar_duck",
                      .weight = 0.6,
                      .intensity_scale = 1.0},
      FleetRegionSpec{.name = "windy-north",
                      .profile = "windy_night",
                      .weight = 0.4,
                      .intensity_scale = 0.55},
  };
  FleetServiceSpec interactive;
  interactive.name = "interactive";
  interactive.peak_load = 120000.0;
  // A diurnal curve peaking in the evening: the awkward case for a
  // solar-duck grid, which is exactly what the kind is for.
  interactive.trace = {0.35, 0.30, 0.28, 0.27, 0.28, 0.32, 0.45, 0.60,
                       0.75, 0.85, 0.90, 0.95, 0.97, 0.95, 0.92, 0.90,
                       0.92, 0.97, 1.00, 0.98, 0.90, 0.75, 0.55, 0.42};
  FleetServiceSpec batch;
  batch.name = "batch";
  batch.peak_load = 80000.0;  // flat trace: always-on background work
  fleet.services = {std::move(interactive), std::move(batch)};
  return fleet;
}

FleetResult simulate_fleet(const FleetSpec& fleet, device::Domain domain,
                           const core::ModelSuite& suite,
                           std::span<const device::ChipSpec> chips) {
  // Aggregate hourly demand over the services: the pooled peak sizes
  // reconfigurable platforms, the per-service peaks size dedicated ASICs.
  std::array<double, kHours> total_demand{};
  double pool_peak = 0.0;
  double dedicated_peak_sum = 0.0;
  for (int hour = 0; hour < kHours; ++hour) {
    for (const FleetServiceSpec& service : fleet.services) {
      total_demand[static_cast<std::size_t>(hour)] += demand_at(service, hour);
    }
    pool_peak = std::max(pool_peak, total_demand[static_cast<std::size_t>(hour)]);
  }
  for (const FleetServiceSpec& service : fleet.services) {
    double peak = 0.0;
    for (int hour = 0; hour < kHours; ++hour) {
      peak = std::max(peak, demand_at(service, hour));
    }
    dedicated_peak_sum += peak;
  }

  // Reconfiguration amortization: a pool cycling through S services swaps
  // bitstreams 2*(S-1) times a day (morning ramp-up, evening ramp-down);
  // each swap idles `reconfig_overhead_hours` of fleet capacity.
  const double swaps_per_day =
      2.0 * static_cast<double>(fleet.services.size() - 1);
  const double reconfig_factor =
      1.0 + fleet.reconfig_overhead_hours * swaps_per_day / 24.0;

  // Demand-weighted regional intensity: what each region's grid costs at
  // the hours demand actually lands in, scaled by its annual mean.
  double demand_sum = 0.0;
  for (const double d : total_demand) {
    demand_sum += d;
  }
  double weight_sum = 0.0;
  for (const FleetRegionSpec& region : fleet.regions) {
    weight_sum += region.weight;
  }
  FleetResult out;
  out.peak_units = pool_peak;
  out.region_multipliers.reserve(fleet.regions.size());
  double fleet_multiplier = 0.0;
  for (const FleetRegionSpec& region : fleet.regions) {
    const act::DailyProfile profile = profile_by_name(region.profile);
    double weighted = 0.0;
    for (int hour = 0; hour < kHours; ++hour) {
      weighted += total_demand[static_cast<std::size_t>(hour)] *
                  profile.multiplier(hour);
    }
    const double shape = demand_sum > 0.0 ? weighted / demand_sum : 1.0;
    const double effective = region.intensity_scale * shape;
    out.region_multipliers.push_back(effective);
    fleet_multiplier += (region.weight / weight_sum) * effective;
  }

  core::ModelSuite regional = suite;
  regional.operation.use_intensity =
      regional.operation.use_intensity * fleet_multiplier;
  const core::LifecycleModel model(regional);

  out.groups.reserve(chips.size());
  for (const device::ChipSpec& chip : chips) {
    const bool reconfigures = chip.kind == device::ChipKind::fpga;
    const double pooled_units =
        pool_peak / fleet.utilization * (reconfigures ? reconfig_factor : 1.0);
    workload::Schedule schedule = core::paper_schedule(
        domain, static_cast<int>(fleet.services.size()),
        fleet.horizon_years * units::unit::years, 1.0);
    for (std::size_t s = 0; s < fleet.services.size(); ++s) {
      const FleetServiceSpec& service = fleet.services[s];
      schedule[s].name = service.name;
      if (chip.is_reusable()) {
        // One pool time-shares every service.
        schedule[s].volume = pooled_units;
      } else {
        // ASICs dedicate a fleet per service, sized for that service's
        // own peak.
        double peak = 0.0;
        for (int hour = 0; hour < kHours; ++hour) {
          peak = std::max(peak, demand_at(service, hour));
        }
        schedule[s].volume = peak / fleet.utilization;
      }
    }
    const core::PlatformCfp cfp = model.evaluate(chip, schedule);
    FleetGroupResult group;
    group.total = cfp.total;
    group.units = chip.is_reusable() ? pooled_units
                                     : dedicated_peak_sum / fleet.utilization;
    group.reconfig_factor = reconfigures ? reconfig_factor : 1.0;
    out.groups.push_back(group);
  }
  return out;
}

// -- JSON -----------------------------------------------------------------------

Json fleet_spec_to_json(const FleetSpec& fleet) {
  Json out = Json::object();
  Json regions = Json::array();
  for (const FleetRegionSpec& region : fleet.regions) {
    Json entry = Json::object();
    entry["name"] = region.name;
    entry["profile"] = region.profile;
    entry["weight"] = region.weight;
    entry["intensity_scale"] = region.intensity_scale;
    regions.push_back(std::move(entry));
  }
  out["regions"] = std::move(regions);
  Json services = Json::array();
  for (const FleetServiceSpec& service : fleet.services) {
    Json entry = Json::object();
    entry["name"] = service.name;
    entry["peak_load"] = service.peak_load;
    Json trace = Json::array();
    for (const double multiplier : service.trace) {
      trace.push_back(multiplier);
    }
    entry["trace"] = std::move(trace);
    services.push_back(std::move(entry));
  }
  out["services"] = std::move(services);
  out["horizon_years"] = fleet.horizon_years;
  out["utilization"] = fleet.utilization;
  out["reconfig_overhead_hours"] = fleet.reconfig_overhead_hours;
  out["mc_samples"] = fleet.mc_samples;
  return out;
}

FleetSpec fleet_spec_from_json(const Json& json, FleetSpec base) {
  core::check_known_keys(json, "fleet",
                         {"regions", "services", "horizon_years", "utilization",
                          "reconfig_overhead_hours", "mc_samples"});
  if (json.contains("regions")) {
    base.regions.clear();
    for (const Json& entry : json.at("regions").as_array()) {
      core::check_known_keys(entry, "fleet region",
                             {"name", "profile", "weight", "intensity_scale"});
      FleetRegionSpec region;
      region.name = entry.string_or("name", region.name);
      region.profile = entry.string_or("profile", region.profile);
      region.weight = entry.number_or("weight", region.weight);
      region.intensity_scale =
          entry.number_or("intensity_scale", region.intensity_scale);
      base.regions.push_back(std::move(region));
    }
  }
  if (json.contains("services")) {
    base.services.clear();
    for (const Json& entry : json.at("services").as_array()) {
      core::check_known_keys(entry, "fleet service", {"name", "peak_load", "trace"});
      FleetServiceSpec service;
      service.name = entry.string_or("name", service.name);
      service.peak_load = entry.number_or("peak_load", service.peak_load);
      if (entry.contains("trace")) {
        for (const Json& multiplier : entry.at("trace").as_array()) {
          service.trace.push_back(multiplier.as_number());
        }
      }
      base.services.push_back(std::move(service));
    }
  }
  base.horizon_years = json.number_or("horizon_years", base.horizon_years);
  base.utilization = json.number_or("utilization", base.utilization);
  base.reconfig_overhead_hours =
      json.number_or("reconfig_overhead_hours", base.reconfig_overhead_hours);
  base.mc_samples = static_cast<int>(
      core::int_field_or(json, "mc_samples", base.mc_samples, 0, 10'000'000));
  return base;
}

Json fleet_result_to_json(const FleetResult& result) {
  Json out = Json::object();
  Json groups = Json::array();
  for (const FleetGroupResult& group : result.groups) {
    Json entry = Json::object();
    entry["total"] = core::to_json(group.total);
    entry["units"] = group.units;
    entry["reconfig_factor"] = group.reconfig_factor;
    groups.push_back(std::move(entry));
  }
  out["groups"] = std::move(groups);
  Json multipliers = Json::array();
  for (const double multiplier : result.region_multipliers) {
    multipliers.push_back(multiplier);
  }
  out["region_multipliers"] = std::move(multipliers);
  out["peak_units"] = result.peak_units;
  return out;
}

FleetResult fleet_result_from_json(const Json& json) {
  core::check_known_keys(json, "result fleet",
                         {"groups", "region_multipliers", "peak_units"});
  FleetResult result;
  for (const Json& entry : json.at("groups").as_array()) {
    core::check_known_keys(entry, "result fleet group",
                           {"total", "units", "reconfig_factor"});
    FleetGroupResult group;
    group.total = core::breakdown_from_json(entry.at("total"));
    group.units = entry.at("units").as_number_total();
    group.reconfig_factor = entry.at("reconfig_factor").as_number_total();
    result.groups.push_back(group);
  }
  for (const Json& multiplier : json.at("region_multipliers").as_array()) {
    result.region_multipliers.push_back(multiplier.as_number_total());
  }
  result.peak_units = json.at("peak_units").as_number_total();
  return result;
}

}  // namespace greenfpga::scenario
