#ifndef GREENFPGA_SCENARIO_RESULT_IO_HPP
#define GREENFPGA_SCENARIO_RESULT_IO_HPP

/// \file result_io.hpp
/// Structured result output: frame lowering and the canonical JSON form.
///
/// `ScenarioResult` is the engine's in-memory answer; this module gives it
/// two machine-readable faces:
///
///   * `to_frames` lowers every `ScenarioKind` into one or more columnar
///     `report::ResultFrame`s -- the single source every renderer (text
///     table, CSV, Markdown, batch index) draws from, so no output format
///     ever re-implements a scenario kind;
///   * `result_to_json` / `result_from_json` are a canonical, total JSON
///     round-trip through `io::Json`: serialize -> parse -> re-serialize
///     is byte-identical, and `result_from_json(result_to_json(r)) == r`
///     (pinned by tests/golden_results_test.cpp).  Downstream consumers
///     (dashboards, caches, the `greenfpga batch` index) can therefore
///     read any answer without re-running the engine.
///
/// The only result content that does not survive JSON is the *programmatic*
/// part of a sensitivity spec (custom `ParameterRange` appliers), which --
/// exactly as in `spec_to_json` -- serializes by name and is reconstructed
/// from `table1_ranges()` on load.

#include <vector>

#include "io/json.hpp"
#include "report/result_frame.hpp"
#include "scenario/engine.hpp"

namespace greenfpga::scenario {

/// Canonical JSON form of an engine result: the as-run spec, the resolved
/// platforms, and the kind-dependent payload (every field, deterministic
/// key order, shortest round-trip numbers).
[[nodiscard]] io::Json result_to_json(const ScenarioResult& result);

/// Inverse of `result_to_json`.  Throws core::ConfigError / io::JsonError
/// on malformed input.
[[nodiscard]] ScenarioResult result_from_json(const io::Json& json);

/// Result equality, defined as equality of the canonical JSON forms (the
/// payload holds std::function-bearing spec members, so memberwise
/// comparison is not expressible; canonical JSON is the identity every
/// consumer observes).
[[nodiscard]] bool operator==(const ScenarioResult& a, const ScenarioResult& b);

/// Lower a result into its presentation frames (at least one for every
/// kind; sensitivity yields tornado + Monte-Carlo summary frames).  The
/// raw Monte-Carlo sample matrix is deliberately *not* lowered here --
/// see `mc_samples_frame`.
[[nodiscard]] std::vector<report::ResultFrame> to_frames(const ScenarioResult& result);

/// Per-sample frame of a montecarlo-kind result: one row per sample, a
/// total column per platform and a ratio column per non-baseline platform
/// (the `--csv` export).  Throws std::logic_error when the result carries
/// no uncertainty payload.
[[nodiscard]] report::ResultFrame mc_samples_frame(const ScenarioResult& result);

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_RESULT_IO_HPP
