#ifndef GREENFPGA_SCENARIO_FLEET_HPP
#define GREENFPGA_SCENARIO_FLEET_HPP

/// \file fleet.hpp
/// The `fleet` scenario kind: a mixed-platform datacenter serving a
/// 24-hour traffic trace across regions with distinct grid profiles.
///
/// The paper evaluates one platform against one schedule; a datacenter
/// operator sizes a *fleet* against concurrent services whose demand
/// varies by hour and whose carbon cost varies by where (and when) the
/// fleet runs.  The simulation:
///
///   * aggregates the services' hourly demand traces into a pooled peak
///     (reconfigurable platforms time-share one pool) and a sum of
///     per-service peaks (ASICs dedicate silicon per service);
///   * charges FPGA pools a reconfiguration-amortization overhead --
///     swapping bitstreams between services costs fleet-hours, so the
///     pool is over-provisioned by `1 + overhead * swaps/day / 24`;
///   * weights each region's `act::DailyProfile` by the hours demand
///     actually lands in (a solar-duck region is cheap for midday-heavy
///     traffic, expensive for evening peaks) and scales the suite's
///     use-phase intensity by the demand-weighted fleet mean;
///   * evaluates every platform's lifecycle CFP for the sized fleet over
///     the horizon, optionally as a Monte-Carlo distribution over the
///     spec's Table 1 parameter distributions.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/lifecycle_model.hpp"
#include "device/chip_spec.hpp"
#include "io/json.hpp"

namespace greenfpga::scenario {

/// One deployment region: a named 24-hour grid-intensity profile plus its
/// share of the fleet and its annual-mean intensity relative to the suite.
struct FleetRegionSpec {
  std::string name = "region";
  /// "uniform" | "solar_duck" | "windy_night" (act::DailyProfile).
  std::string profile = "uniform";
  /// Relative share of the fleet placed here (normalised over regions).
  double weight = 1.0;
  /// Annual-mean intensity of this region's grid relative to the suite's
  /// `operation.use_intensity` (0.5 = a grid half as carbon-intense).
  double intensity_scale = 1.0;
};

/// One service the fleet serves: its peak concurrent demand in accelerator
/// units and an optional 24-hour demand-multiplier trace (empty = flat).
struct FleetServiceSpec {
  std::string name = "service";
  /// Accelerator units needed at the service's busiest hour.
  double peak_load = 1.0;
  /// Hourly demand multipliers (24 entries, each in [0, 1] of peak_load);
  /// empty means flat demand at peak_load around the clock.
  std::vector<double> trace;
};

/// Fleet-kind parameters.  Monte-Carlo support reuses the spec's
/// `montecarlo.distributions` / `seed` / `percentiles`; `mc_samples`
/// controls the sample count (0 = point estimate only).
struct FleetSpec {
  std::vector<FleetRegionSpec> regions;
  std::vector<FleetServiceSpec> services;
  /// Evaluation horizon (every service runs concurrently over it).
  double horizon_years = 6.0;
  /// Target utilisation of the provisioned pool, in (0, 1].
  double utilization = 0.7;
  /// Fleet-hours lost per bitstream swap (FPGA platforms only).
  double reconfig_overhead_hours = 0.5;
  /// Monte-Carlo samples over `montecarlo.distributions` (0 = off).
  int mc_samples = 0;

  /// Structural validation; throws std::invalid_argument with messages
  /// prefixed "ScenarioSpec '<scenario_name>': ".
  void validate(const std::string& scenario_name) const;
};

/// The default two-region, two-service datacenter: a solar-heavy region
/// carrying most of the fleet plus a low-carbon windy region, serving a
/// diurnal interactive service and a flat batch service.
[[nodiscard]] FleetSpec default_fleet_spec();

/// One platform's sized-and-evaluated fleet.
struct FleetGroupResult {
  core::CfpBreakdown total;      ///< lifecycle CFP of the whole fleet
  double units = 0.0;            ///< provisioned accelerator units
  double reconfig_factor = 1.0;  ///< over-provisioning from bitstream swaps
};

/// The fleet-kind payload.
struct FleetResult {
  std::vector<FleetGroupResult> groups;    ///< one per spec platform
  /// Demand-weighted intensity multiplier per region (profile shape times
  /// `intensity_scale`): what the region's grid costs when demand happens.
  std::vector<double> region_multipliers;
  double peak_units = 0.0;  ///< pooled concurrent peak demand
};

/// Size and evaluate the fleet on every chip.  Deterministic; `suite` is
/// the effective suite (grid profile applied).  Throws
/// std::invalid_argument on unknown region profiles.
[[nodiscard]] FleetResult simulate_fleet(const FleetSpec& fleet, device::Domain domain,
                                         const core::ModelSuite& suite,
                                         std::span<const device::ChipSpec> chips);

/// Canonical JSON of a fleet spec section (every field, defaults included).
[[nodiscard]] io::Json fleet_spec_to_json(const FleetSpec& fleet);

/// Parse a fleet spec section; omitted scalar fields keep `base`'s values,
/// "regions" / "services" arrays replace wholesale when present.
[[nodiscard]] FleetSpec fleet_spec_from_json(const io::Json& json, FleetSpec base);

/// Canonical JSON of a fleet result payload.
[[nodiscard]] io::Json fleet_result_to_json(const FleetResult& result);

/// Inverse of `fleet_result_to_json`.
[[nodiscard]] FleetResult fleet_result_from_json(const io::Json& json);

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_FLEET_HPP
