/// \file kind_registry.cpp
/// Registry assembly and name lookups.

#include "scenario/kind_registry.hpp"

#include <array>
#include <stdexcept>

#include "scenario/kinds/modules.hpp"

namespace greenfpga::scenario {

std::span<const KindModule* const> all_kind_modules() {
  // Enum order: kind_module() indexes this array by the enum value
  // (pinned by tests/kind_registry_test.cpp).
  static const std::array<const KindModule*, 10> modules = {
      &kinds::compare_module(),    &kinds::sweep_module(),
      &kinds::grid_module(),       &kinds::timeline_module(),
      &kinds::node_dse_module(),   &kinds::breakeven_module(),
      &kinds::sensitivity_module(), &kinds::montecarlo_module(),
      &kinds::frontier_module(),   &kinds::fleet_module(),
  };
  return modules;
}

const KindModule& kind_module(ScenarioKind kind) {
  const std::span<const KindModule* const> modules = all_kind_modules();
  const auto index = static_cast<std::size_t>(kind);
  if (index >= modules.size()) {
    throw std::logic_error("kind_module: unregistered scenario kind");
  }
  return *modules[index];
}

const KindModule* find_kind_module(std::string_view name) {
  for (const KindModule* module : all_kind_modules()) {
    if (module->name == name) {
      return module;
    }
    for (const std::string_view alias : module->aliases) {
      if (alias == name) {
        return module;
      }
    }
  }
  return nullptr;
}

std::string kind_name_list() {
  std::string names;
  for (const KindModule* module : all_kind_modules()) {
    if (!names.empty()) {
      names += ", ";
    }
    names += module->name;
  }
  return names;
}

}  // namespace greenfpga::scenario
