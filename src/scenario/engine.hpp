#ifndef GREENFPGA_SCENARIO_ENGINE_HPP
#define GREENFPGA_SCENARIO_ENGINE_HPP

/// \file engine.hpp
/// The unified evaluation engine: one entry point for every scenario.
///
/// `Engine::run(spec)` dispatches a declarative `ScenarioSpec` to the
/// lifecycle models and returns a `ScenarioResult`:
///
///   * compare / sweep / grid specs evaluate every (platform, scenario
///     point) pair, with independent points executed **in parallel** on a
///     worker pool (each worker owns its own `LifecycleModel` copy, whose
///     memoised embodied-carbon sub-results make a 50x50 heat-map compute
///     fab/package/EOL once per platform instead of 2500 times);
///   * timeline / breakeven / node_dse / sensitivity specs dispatch to the
///     corresponding scenario primitives (node-DSE candidates also run on
///     the pool).
///
/// Results are **bit-identical across thread counts**: every point is
/// computed by the same deterministic code from the same inputs, and
/// workers write to pre-sized slots (pinned by tests/engine_test.cpp).
///
/// The legacy per-module classes (SweepEngine, HeatmapEngine,
/// BreakevenSolver, NodeDse, TimelineSimulator, tornado/monte_carlo) are
/// thin spec-builders over this engine and remain as deprecated shims.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/comparator.hpp"
#include "device/platform_registry.hpp"
#include "dse/frontier.hpp"
#include "scenario/breakeven.hpp"
#include "scenario/heatmap.hpp"
#include "scenario/node_dse.hpp"
#include "scenario/sensitivity.hpp"
#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"
#include "scenario/timeline.hpp"

namespace greenfpga::scenario {

class ResultCache;

/// Engine construction knobs.
struct EngineOptions {
  /// Worker count for independent points; 0 means `Engine::default_threads()`
  /// (the `GREENFPGA_THREADS` environment variable, else hardware
  /// concurrency).  Clamped to `Engine::kMaxThreads`.  Results do not
  /// depend on this value.
  int threads = 0;
  /// Platform-name resolver; nullptr means `PlatformRegistry::builtins()`.
  /// The registry must outlive the engine.
  const device::PlatformRegistry* registry = nullptr;
  /// Optional shared result cache (see scenario/result_cache.hpp): `run`
  /// consults it keyed by `cache_key`, and `run_batch` evaluates each
  /// distinct uncached key once.  Cached results are byte-identical to a
  /// cold run (the engine is deterministic), pinned by tests.  nullptr
  /// disables caching.  The cache must outlive the engine; it is
  /// thread-safe and may be shared across engines.
  ResultCache* cache = nullptr;
};

/// One evaluated scenario point: axis coordinates plus every platform's
/// lifecycle result (in `ScenarioSpec::platforms` order).
struct EvalPoint {
  std::vector<double> coords;
  std::vector<core::PlatformCfp> platforms;

  /// Total-CFP ratio of platform `index` over platform `baseline`.
  [[nodiscard]] double ratio(std::size_t index, std::size_t baseline = 0) const;
};

/// Closed-form breakeven solves (nullopt = not requested or no crossover).
struct BreakevenReport {
  std::optional<double> app_count;
  std::optional<double> lifetime_years;
  std::optional<double> volume;
};

/// Summary statistics of one Monte-Carlo-sampled metric.
struct UqStat {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n - 1)
  /// One value per requested percentile (`MonteCarloUq::percentiles`),
  /// linearly interpolated over the sorted samples.
  std::vector<double> percentile_values;
};

/// Mean / sample stddev / interpolated percentiles (in percent) of one
/// sampled metric.  The single definition shared by the montecarlo kind
/// and the sensitivity module's Monte-Carlo summary, so the two reports
/// can never disagree on what a percentile means.  Requires at least one
/// value; sorts internally.
[[nodiscard]] UqStat summarise_samples(std::vector<double> values,
                                       const std::vector<double>& percentiles);

/// Monte-Carlo uncertainty quantification over the spec's platform set:
/// every metric the point estimate produced, as a sampled distribution.
/// Produced by the montecarlo kind; bit-identical for any thread count
/// (counter-based per-sample RNG streams, pre-sized result slots).
struct MonteCarloUq {
  int samples = 0;
  std::vector<double> percentiles;     ///< requested percentiles, in percent
  std::vector<UqStat> platform_total;  ///< total CFP [kg CO2e], spec platform order
  /// Total-CFP ratio of platform p over the baseline (platform 0); entry
  /// k describes platform k + 1.  Empty with fewer than two platforms.
  std::vector<UqStat> ratio;
  /// Fraction of samples where platform k + 1 beats (is below) the
  /// baseline; aligned with `ratio`.
  std::vector<double> win_fraction;
  /// Raw per-sample totals [kg CO2e], [platform][sample] in sample order
  /// (sample i is reproducible in isolation from the seed alone): the CSV
  /// export and CDF charts read these.
  std::vector<std::vector<double>> sample_totals_kg;

  /// Per-sample ratio series of platform `index` over the baseline,
  /// in sample order.
  [[nodiscard]] std::vector<double> ratio_samples(std::size_t index = 1) const;
};

/// The engine's output: the resolved spec plus the kind-dependent payload.
struct ScenarioResult {
  ScenarioSpec spec;                            ///< as run (platforms defaulted)
  std::vector<std::string> platform_names;      ///< one per spec platform
  std::vector<device::ChipSpec> resolved_chips; ///< one per spec platform

  /// compare: 1 point; sweep: one per axis sample; grid: row-major with
  /// axis 1 (y) outer, axis 0 (x) inner.
  std::vector<EvalPoint> points;

  std::optional<TimelineSeries> timeline;       ///< timeline kind
  std::vector<NodeCandidate> candidates;        ///< node_dse kind, ranked
  std::vector<TornadoEntry> tornado;            ///< sensitivity kind
  std::optional<MonteCarloResult> monte_carlo;  ///< sensitivity kind
  std::optional<BreakevenReport> breakeven;     ///< breakeven kind
  std::optional<MonteCarloUq> uncertainty;      ///< montecarlo kind (and fleet MC)
  std::optional<dse::FrontierResult> frontier;  ///< frontier kind
  std::optional<FleetResult> fleet;             ///< fleet kind

  // -- legacy-shaped views (throw std::logic_error when the shape does not
  //    match, e.g. no ASIC/FPGA platform pair) --------------------------------
  [[nodiscard]] core::Comparison comparison() const;  ///< compare kind
  [[nodiscard]] SweepSeries sweep_series() const;     ///< sweep kind
  [[nodiscard]] Heatmap heatmap() const;              ///< grid kind

  /// Index of the first platform of `kind`, if any.
  [[nodiscard]] std::optional<std::size_t> platform_index(device::ChipKind kind) const;
};

/// The unified evaluation engine.
class Engine {
 public:
  /// Upper bound on the worker count (a pool is spawned per run; an
  /// unbounded request would otherwise spawn one OS thread per grid
  /// point).
  static constexpr int kMaxThreads = 256;

  explicit Engine(EngineOptions options = {});

  /// Evaluate one scenario.  Validates the spec, resolves platforms,
  /// applies the grid profile, dispatches on kind.  With a configured
  /// `EngineOptions::cache`, a repeated spec returns the cached result
  /// (byte-identical to a cold run).
  [[nodiscard]] ScenarioResult run(const ScenarioSpec& spec) const;

  /// One cache-aware evaluation: the (shared, immutable) result plus
  /// whether it came out of the cache, for callers that surface hit/miss
  /// (the serve handlers' X-Cache header).  Without a configured cache
  /// this evaluates and reports `hit = false`.
  struct CachedRun {
    std::shared_ptr<const ScenarioResult> result;
    bool hit = false;
    std::string key;  ///< the content key (see cache_key)
    /// FNV-1a of `key`, computed in the same pass that serialized it
    /// (hash-while-dump): the compact fingerprint serve surfaces as
    /// X-Cache-Key without re-hashing the key bytes.
    std::uint64_t fingerprint = 0;
  };
  [[nodiscard]] CachedRun run_cached(const ScenarioSpec& spec) const;

  /// The content-address of `spec` under this engine: the compact
  /// canonical JSON of the validated spec (platforms defaulted, model
  /// suite embedded) plus the registry-resolved platform chips.  Two
  /// specs share a key exactly when the engine computes byte-identical
  /// results for them; resolving through the registry keeps engines with
  /// different registries from colliding on a name.  Throws on an invalid
  /// spec, like `run`.
  [[nodiscard]] std::string cache_key(const ScenarioSpec& spec) const;

  /// Evaluate many specs as one batch, returning results in spec order.
  ///
  /// The batch flattens every spec's independent work items -- one task
  /// per scenario point (compare/sweep/grid), one per Monte-Carlo sample
  /// (montecarlo), one per remaining spec (timeline, breakeven, node_dse,
  /// sensitivity) -- onto a single worker pool, so spec-level and
  /// point-level work share the same `threads()` workers instead of
  /// serialising spec-by-spec.  Each worker keeps one `LifecycleModel`
  /// per distinct effective model suite, so the embodied-carbon
  /// memoisation is shared across every spec evaluating the same
  /// platform set under the same suite.
  ///
  /// Results are bit-identical to running each spec individually at any
  /// thread count: every task computes from its spec's inputs alone and
  /// writes a pre-sized slot (pinned by tests/golden_results_test.cpp).
  /// A failing spec fails the whole batch with that spec's error.
  ///
  /// With a configured `EngineOptions::cache`, each *distinct* cache key
  /// is looked up once (one hit or miss counted per distinct key) and the
  /// misses are evaluated as one batch, so a manifest repeating a spec --
  /// or repeating one across invocations -- evaluates it once.
  [[nodiscard]] std::vector<ScenarioResult> run_batch(
      const std::vector<ScenarioSpec>& specs) const;

  [[nodiscard]] int threads() const { return threads_; }

  /// GREENFPGA_THREADS (>= 1) when set and parseable, else hardware
  /// concurrency (>= 1).
  [[nodiscard]] static int default_threads();

 private:
  struct PreparedRun;  ///< prepared spec + effective suite (engine.cpp)

  [[nodiscard]] const device::PlatformRegistry& registry() const;
  [[nodiscard]] PreparedRun prepare(const ScenarioSpec& spec) const;
  [[nodiscard]] ScenarioResult run_prepared(PreparedRun prepared) const;
  [[nodiscard]] std::vector<ScenarioResult> run_batch_prepared(
      std::vector<PreparedRun> prepared) const;

  int threads_ = 1;
  const device::PlatformRegistry* registry_ = nullptr;
  ResultCache* cache_ = nullptr;
};

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_ENGINE_HPP
