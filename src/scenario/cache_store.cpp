/// \file cache_store.cpp
/// Content-addressed on-disk result entries: temp-write + rename, verify
/// the embedded key on load.

#include "scenario/cache_store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/hash.hpp"
#include "io/json.hpp"
#include "scenario/engine.hpp"
#include "scenario/result_io.hpp"

namespace greenfpga::scenario {

namespace fs = std::filesystem;

CacheStore::CacheStore(std::string directory) : directory_(std::move(directory)) {
  if (directory_.empty()) {
    throw std::runtime_error("CacheStore: empty cache directory");
  }
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec || !fs::is_directory(directory_)) {
    throw std::runtime_error("CacheStore: cannot create cache directory '" +
                             directory_ + "'" + (ec ? ": " + ec.message() : ""));
  }
}

std::string CacheStore::path_for(const std::string& key) const {
  return (fs::path(directory_) / (io::hex64(io::fnv1a64(key)) + ".json")).string();
}

bool CacheStore::save(const std::string& key, const ScenarioResult& result) noexcept {
  try {
    io::Json entry = io::Json::object();
    entry["key"] = key;
    entry["result"] = result_to_json(result);
    const std::string final_path = path_for(key);
    const std::string temp_path =
        final_path + ".tmp." +
        std::to_string(temp_sequence_.fetch_add(1, std::memory_order_relaxed));
    {
      std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        return false;
      }
      std::string text;
      entry.dump_to(text, 0);
      text.push_back('\n');
      out << text;
      if (!out.good()) {
        out.close();
        std::remove(temp_path.c_str());
        return false;
      }
    }
    std::error_code ec;
    fs::rename(temp_path, final_path, ec);
    if (ec) {
      std::remove(temp_path.c_str());
      return false;
    }
    return true;
  } catch (...) {
    return false;
  }
}

std::shared_ptr<const ScenarioResult> CacheStore::load(
    const std::string& key) const noexcept {
  try {
    std::ifstream in(path_for(key), std::ios::binary);
    if (!in) {
      return nullptr;  // not persisted (the common cold-key case)
    }
    std::ostringstream text;
    text << in.rdbuf();
    const io::Json entry = io::parse_json(text.str());
    if (!entry.is_object() || !entry.contains("key") ||
        entry.at("key").as_string() != key) {
      return nullptr;  // fingerprint collision or foreign file
    }
    return std::make_shared<const ScenarioResult>(
        result_from_json(entry.at("result")));
  } catch (...) {
    return nullptr;  // unparsable / truncated / schema drift: just a miss
  }
}

}  // namespace greenfpga::scenario
