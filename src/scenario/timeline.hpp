#ifndef GREENFPGA_SCENARIO_TIMELINE_HPP
#define GREENFPGA_SCENARIO_TIMELINE_HPP

/// \file timeline.hpp
/// Multi-decade timeline simulation with chip-lifetime replacement
/// (paper §4.2(E), Fig. 9).
///
/// The 1-D sweeps treat the evaluation window as `N_app * T_i` with a
/// single FPGA fleet purchase.  Once the evaluation horizon exceeds the
/// FPGA's physical service life (15 years), the fleet must be
/// re-manufactured, producing visible jumps in the FPGA's cumulative CFP
/// at 15/30/... years -- whereas the ASIC platform already re-manufactures
/// for every application, so its staircase is unchanged.  This simulator
/// replays that cumulative timeline:
///
///   * at each application boundary (every `app_lifetime`): ASIC pays
///     design + fleet silicon; FPGA pays application development;
///   * at each FPGA service-life boundary: FPGA pays fleet silicon again
///     (manufacturing + packaging + EOL; the design already exists);
///   * operation accrues continuously on both platforms.

#include <vector>

#include "core/lifecycle_model.hpp"
#include "device/catalog.hpp"
#include "scenario/sweep.hpp"

namespace greenfpga::scenario {

/// Timeline experiment configuration (paper values: 45-year horizon,
/// 1-year applications, 1e6 volume, 15-year FPGA service life from the
/// chip spec).
struct TimelineParameters {
  units::TimeSpan horizon = 45.0 * units::unit::years;
  units::TimeSpan app_lifetime = 1.0 * units::unit::years;
  double volume = 1e6;
  /// Sampling resolution of the cumulative series.
  units::TimeSpan step = 0.25 * units::unit::years;
};

/// Cumulative CFP series for both platforms.
struct TimelineSeries {
  std::vector<double> time_years;
  std::vector<double> asic_cumulative_kg;
  std::vector<double> fpga_cumulative_kg;
  /// Times (years) at which the FPGA fleet was (re)purchased: 0, 15, 30...
  std::vector<double> fpga_purchase_years;
  /// Crossings of the two cumulative curves over the horizon.
  [[nodiscard]] std::vector<Crossover> crossovers() const;
};

/// Engine primitive: replay the cumulative timeline for an explicit
/// testcase, all durations in years.  Prefer `Engine::run` with a
/// timeline-kind `ScenarioSpec`; this exists so the engine and the
/// simulator shim share one implementation.
[[nodiscard]] TimelineSeries simulate_timeline(const core::LifecycleModel& model,
                                               const device::DomainTestcase& testcase,
                                               double horizon_years,
                                               double app_lifetime_years, double volume,
                                               double step_years);

/// Replays the Fig. 9 experiment for one domain testcase.
///
/// \deprecated Thin shim over `scenario::Engine`; new code should build a
/// timeline-kind `ScenarioSpec` and call `Engine::run`.
class TimelineSimulator {
 public:
  TimelineSimulator(core::LifecycleModel model, device::DomainTestcase testcase);

  [[nodiscard]] TimelineSeries run(const TimelineParameters& parameters) const;

 private:
  core::LifecycleModel model_;
  device::DomainTestcase testcase_;
};

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_TIMELINE_HPP
