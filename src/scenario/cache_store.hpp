#ifndef GREENFPGA_SCENARIO_CACHE_STORE_HPP
#define GREENFPGA_SCENARIO_CACHE_STORE_HPP

/// \file cache_store.hpp
/// Content-addressed disk persistence for cached scenario results.
///
/// `greenfpga serve` keeps its hot set in the in-memory `ResultCache`; a
/// restart used to start cold.  The store writes each cached result to
/// `<dir>/<hex64-fnv1a-of-key>.json` so a restarted daemon re-answers a
/// previously evaluated spec from disk (and re-promotes it to memory)
/// instead of re-running the engine.
///
/// The file name is only the 64-bit *fingerprint* of the content key
/// (io::content_digest's hex), which is not collision-proof, so every
/// file embeds the full key and `load` verifies it: a fingerprint
/// collision -- like a truncated, corrupted or hand-edited file -- is
/// treated as a miss, never as a wrong answer.  Bodies are the canonical
/// `result_to_json` form, so a disk hit is byte-identical to a fresh
/// evaluation.  Writes go to a unique temp file and rename into place
/// (atomic within one directory): readers never observe a half-written
/// entry, even across a crash.
///
/// The store is append-only from the daemon's point of view: eviction
/// from the memory tier does not unlink files (disk is the durable tier;
/// operators prune the directory like any cache dir).  All methods are
/// thread-safe and never throw -- persistence is an optimization, so IO
/// failures degrade to miss / not-saved.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace greenfpga::scenario {

struct ScenarioResult;

class CacheStore {
 public:
  /// Persist under `directory`, created (with parents) if absent.
  /// Throws std::runtime_error when the directory cannot be created or
  /// is not writable -- a misconfigured `--cache-dir` should fail at
  /// startup, not degrade silently forever.
  explicit CacheStore(std::string directory);

  /// Where `key`'s entry lives (exposed for tests and operators).
  [[nodiscard]] std::string path_for(const std::string& key) const;

  /// Write `key -> result` durably.  Best-effort: returns false (and
  /// leaves no partial file visible) on any IO failure.
  bool save(const std::string& key, const ScenarioResult& result) noexcept;

  /// The stored result for `key`, or nullptr when absent, unreadable,
  /// corrupt, or recorded under a different full key (fingerprint
  /// collision).  Never throws.
  [[nodiscard]] std::shared_ptr<const ScenarioResult> load(
      const std::string& key) const noexcept;

  [[nodiscard]] const std::string& directory() const { return directory_; }

 private:
  std::string directory_;
  /// Distinguishes concurrent writers' temp files for the same key.
  mutable std::atomic<std::uint64_t> temp_sequence_{0};
};

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_CACHE_STORE_HPP
