#ifndef GREENFPGA_SCENARIO_SENSITIVITY_HPP
#define GREENFPGA_SCENARIO_SENSITIVITY_HPP

/// \file sensitivity.hpp
/// Parameter sensitivity over the paper's Table 1 input ranges.
///
/// The paper stresses (§5) that GreenFPGA's outputs inherit the
/// uncertainty of coarse public inputs and exposes every assumption as a
/// knob.  This module quantifies that: one-at-a-time "tornado" analysis
/// and uniform Monte-Carlo sampling over the Table 1 ranges, reporting how
/// the FPGA:ASIC verdict moves.  (An extension beyond the paper's own
/// evaluation, listed in DESIGN.md as ablation support.)

#include <functional>
#include <string>
#include <vector>

#include "core/comparator.hpp"
#include "core/lifecycle_model.hpp"
#include "device/catalog.hpp"
#include "workload/application.hpp"

namespace greenfpga::scenario {

/// One tunable input with its Table 1 range and an applier that writes a
/// sampled value into a ModelSuite.
struct ParameterRange {
  std::string name;
  double low = 0.0;
  double high = 1.0;
  std::function<void(core::ModelSuite&, double)> apply;
};

/// The paper's Table 1, as sweepable ranges.
[[nodiscard]] std::vector<ParameterRange> table1_ranges();

/// One-at-a-time sensitivity result for one parameter.
struct TornadoEntry {
  std::string name;
  double ratio_at_low = 0.0;   ///< FPGA:ASIC ratio with the parameter at range-low
  double ratio_at_high = 0.0;  ///< ... at range-high
  /// |ratio_at_high - ratio_at_low|: bar length in a tornado chart.
  [[nodiscard]] double swing() const;
};

/// Evaluate every range one-at-a-time around `base`; entries are returned
/// sorted by descending swing (classic tornado order).
///
/// \deprecated Thin shim over `scenario::Engine`; new code should build a
/// sensitivity-kind `ScenarioSpec` and call `Engine::run`.
[[nodiscard]] std::vector<TornadoEntry> tornado(const core::ModelSuite& base,
                                                const device::DomainTestcase& testcase,
                                                const workload::Schedule& schedule,
                                                const std::vector<ParameterRange>& ranges);

/// Monte-Carlo summary of the FPGA:ASIC ratio distribution.
struct MonteCarloResult {
  int samples = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double p05 = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  /// Fraction of samples where the FPGA platform had the lower CFP.
  double fpga_win_fraction = 0.0;
};

/// Sample all ranges uniformly and independently `samples` times.
/// Deterministic for a fixed `seed`.
///
/// \deprecated Thin shim over `scenario::Engine`; new code should build a
/// sensitivity-kind `ScenarioSpec` and call `Engine::run`.
[[nodiscard]] MonteCarloResult monte_carlo(const core::ModelSuite& base,
                                           const device::DomainTestcase& testcase,
                                           const workload::Schedule& schedule,
                                           const std::vector<ParameterRange>& ranges,
                                           int samples, unsigned seed = 42);

namespace detail {

/// Engine primitives: the actual tornado / Monte-Carlo implementations
/// (identical semantics to the public functions, which shim through
/// `scenario::Engine`).
[[nodiscard]] std::vector<TornadoEntry> tornado_analysis(
    const core::ModelSuite& base, const device::DomainTestcase& testcase,
    const workload::Schedule& schedule, const std::vector<ParameterRange>& ranges);
[[nodiscard]] MonteCarloResult monte_carlo_analysis(
    const core::ModelSuite& base, const device::DomainTestcase& testcase,
    const workload::Schedule& schedule, const std::vector<ParameterRange>& ranges,
    int samples, unsigned seed);

}  // namespace detail

}  // namespace greenfpga::scenario

#endif  // GREENFPGA_SCENARIO_SENSITIVITY_HPP
