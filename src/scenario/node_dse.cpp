/// \file node_dse.cpp
/// Per-node device re-derivation and lifecycle-CFP ranking.

#include "scenario/node_dse.hpp"

#include <algorithm>
#include <stdexcept>

#include "scenario/engine.hpp"
#include "units/units.hpp"

namespace greenfpga::scenario {

device::ChipSpec retarget_to_node(const device::ChipSpec& chip, tech::ProcessNode node) {
  chip.validate();
  const tech::TechnologyNode& from = tech::node_info(chip.node);
  const tech::TechnologyNode& to = tech::node_info(node);

  device::ChipSpec result = chip;
  result.name = chip.name + "@" + tech::to_string(node);
  result.node = node;
  // Same design, different density: area scales inversely with density.
  const double density_ratio =
      from.transistor_density_mtr_per_mm2 / to.transistor_density_mtr_per_mm2;
  result.die_area = chip.die_area * density_ratio;
  // Iso-design power follows the per-node CV^2f factor.
  result.peak_power =
      chip.peak_power * (to.power_scale_vs_10nm / from.power_scale_vs_10nm);
  // Capacity (the design's logic) is unchanged.
  result.capacity_gates = chip.capacity_gates;

  if (result.die_area.in(units::unit::mm2) > kReticleLimitMm2) {
    throw std::invalid_argument("retarget_to_node: '" + result.name + "' needs " +
                                std::to_string(result.die_area.in(units::unit::mm2)) +
                                " mm^2, beyond the reticle limit");
  }
  return result;
}

NodeCandidate evaluate_node_candidate(const core::LifecycleModel& model,
                                      const workload::Schedule& schedule,
                                      const device::ChipSpec& retargeted) {
  NodeCandidate candidate;
  candidate.chip = retargeted;
  candidate.lifecycle = model.evaluate(retargeted, schedule).total;
  return candidate;
}

void rank_node_candidates(std::vector<NodeCandidate>& candidates) {
  if (candidates.empty()) {
    throw std::invalid_argument("NodeDse: no candidate node can manufacture this design");
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const NodeCandidate& a, const NodeCandidate& b) {
              return a.total() < b.total();
            });
  const double best = candidates.front().total().canonical();
  for (NodeCandidate& candidate : candidates) {
    candidate.total_vs_best = candidate.total().canonical() / best;
  }
}

NodeDse::NodeDse(core::LifecycleModel model, workload::Schedule schedule)
    : model_(std::move(model)), schedule_(std::move(schedule)) {
  workload::validate(schedule_);
}

std::vector<NodeCandidate> NodeDse::explore(
    const device::ChipSpec& chip, std::span<const tech::ProcessNode> nodes) const {
  if (nodes.empty()) {
    // Legacy contract: an explicitly empty node list has no candidates.
    // (In a DseSpec, an empty list means "all database nodes" instead.)
    throw std::invalid_argument("NodeDse: no candidate node can manufacture this design");
  }
  ScenarioSpec spec;
  spec.kind = ScenarioKind::node_dse;
  spec.suite = model_.suite();
  spec.schedule.explicit_schedule = schedule_;
  spec.dse.chip = chip;
  spec.dse.nodes.assign(nodes.begin(), nodes.end());
  return Engine().run(spec).candidates;
}

NodeCandidate NodeDse::best(const device::ChipSpec& chip) const {
  return explore(chip).front();
}

}  // namespace greenfpga::scenario
