#ifndef GREENFPGA_EOL_EOL_MODEL_HPP
#define GREENFPGA_EOL_EOL_MODEL_HPP

/// \file eol_model.hpp
/// End-of-life carbon model (paper §3.2(4), Eq. 6).
///
///     C_EOL = (1 - delta) * C_dis  -  delta * C_recycle
///
/// where `delta` is the fraction of device mass routed to recycling,
/// `C_dis` the CFP of discarding (landfill / incineration, transport) and
/// `C_recycle` the *credit* earned because recycled feedstock displaces
/// virgin material extraction.  The per-mass factors come from the EPA
/// WARM model; Table 1 of the paper quotes WARM's ranges
/// (C_recycle 7.65-29.83, C_dis 0.03-2.08 MTCO2E/ton).
///
/// A negative C_EOL is meaningful: with a high recycle fraction a device's
/// end of life is a net carbon credit.

#include "units/quantity.hpp"

namespace greenfpga::eol {

/// EOL configuration; defaults sit mid-range in the WARM tables with a
/// conservative real-world e-waste recycling rate.
struct EolParameters {
  /// Fraction of device mass recycled, Eq. (6)'s delta in [0, 1].
  double recycled_fraction = 0.20;
  /// Discard emission factor (landfill/incineration + transport).
  units::CarbonPerMass discard_factor = units::CarbonPerMass{1.0 * 1000.0 / 907.18474};
  /// Recycling displacement credit factor.
  units::CarbonPerMass recycle_credit_factor = units::CarbonPerMass{15.0 * 1000.0 / 907.18474};
};

/// Decomposed EOL result for one device.
struct EolBreakdown {
  units::CarbonMass discard;  ///< (1-delta) * C_dis * mass  (>= 0)
  units::CarbonMass credit;   ///< delta * C_recycle * mass  (>= 0, subtracted)

  /// Net EOL CFP (may be negative).
  [[nodiscard]] units::CarbonMass total() const { return discard - credit; }
};

/// EPA WARM-style end-of-life model.
class EolModel {
 public:
  explicit EolModel(EolParameters parameters = {});

  [[nodiscard]] const EolParameters& parameters() const { return parameters_; }

  /// Eq. (6) applied to one device of the given mass.  Throws
  /// std::invalid_argument for negative mass.
  [[nodiscard]] EolBreakdown end_of_life(units::Mass device_mass) const;

 private:
  EolParameters parameters_;
};

}  // namespace greenfpga::eol

#endif  // GREENFPGA_EOL_EOL_MODEL_HPP
