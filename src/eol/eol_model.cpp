/// \file eol_model.cpp
/// Eq. 6 end-of-life discard/recycle carbon with EPA WARM factors.

#include "eol/eol_model.hpp"

#include <stdexcept>

namespace greenfpga::eol {

EolModel::EolModel(EolParameters parameters) : parameters_(parameters) {
  if (parameters_.recycled_fraction < 0.0 || parameters_.recycled_fraction > 1.0) {
    throw std::invalid_argument("EolModel: recycled fraction must be in [0, 1]");
  }
  if (parameters_.discard_factor.canonical() < 0.0 ||
      parameters_.recycle_credit_factor.canonical() < 0.0) {
    throw std::invalid_argument("EolModel: emission factors must be non-negative");
  }
}

EolBreakdown EolModel::end_of_life(units::Mass device_mass) const {
  if (device_mass.canonical() < 0.0) {
    throw std::invalid_argument("end_of_life: negative device mass");
  }
  const double delta = parameters_.recycled_fraction;
  return EolBreakdown{
      .discard = parameters_.discard_factor * device_mass * (1.0 - delta),
      .credit = parameters_.recycle_credit_factor * device_mass * delta,
  };
}

}  // namespace greenfpga::eol
