#ifndef GREENFPGA_ACT_FAB_MODEL_HPP
#define GREENFPGA_ACT_FAB_MODEL_HPP

/// \file fab_model.hpp
/// ACT-style wafer-fab manufacturing carbon model (paper §3.2(2), Eq. 5).
///
/// The manufacturing CFP of one *good* die is
///
///     C_mfg = ( CI_fab * EPA  +  GPA  +  C_materials(rho) ) * A_die / Y(A_die)
///
/// where, per unit wafer area:
///   * EPA  -- fab electrical energy  (ACT "energy per area", kWh/cm^2),
///   * GPA  -- direct greenhouse-gas emissions from process chemistry
///             (kg CO2e/cm^2),
///   * C_materials -- upstream CFP of sourcing wafer/process materials
///             (kg CO2e/cm^2), blended between newly-extracted and recycled
///             feedstock by Eq. (5):
///             C_materials = rho*C_mat,recycled + (1-rho)*C_mat,new,
///   * CI_fab -- carbon intensity of the fab's energy portfolio, and
///   * Y    -- die yield (see tech/yield.hpp); carbon of scrapped dies is
///             charged to good dies.
///
/// Per-node EPA/GPA values follow the published ACT dataset's shape
/// (rising steeply below 10 nm as EUV multi-patterning energy grows);
/// MPA is ACT's constant 0.5 kg CO2e/cm^2 for new materials.  All values
/// are overridable via `FabNodeData`.

#include "act/carbon_intensity.hpp"
#include "tech/node.hpp"
#include "tech/yield.hpp"
#include "units/quantity.hpp"

namespace greenfpga::act {

/// Per-node fab data (per unit of *wafer* area processed).
struct FabNodeData {
  units::EnergyPerArea energy_per_area;          ///< ACT "EPA"
  units::CarbonPerArea gas_per_area;             ///< ACT "GPA"
  units::CarbonPerArea materials_new;            ///< MPA, virgin feedstock
  units::CarbonPerArea materials_recycled;       ///< MPA, recycled feedstock
};

/// Database lookup of default fab data for a node.
[[nodiscard]] const FabNodeData& fab_node_data(tech::ProcessNode node);

/// Manufacturing-model configuration shared across dies.
struct FabParameters {
  /// Carbon intensity of the fab's energy portfolio.  Default: Taiwan grid
  /// with a 20 % renewable power-purchase share (typical leading-edge
  /// foundry sustainability-report posture).
  units::CarbonIntensity fab_energy_intensity =
      offset_grid_intensity(GridRegion::taiwan, 0.20);
  /// Fraction of materials sourced from recycling, Eq. (5)'s rho in [0,1].
  double recycled_material_fraction = 0.0;
  /// Yield model used to charge scrapped-die carbon to good dies.
  tech::YieldSpec yield;
  /// Optional override of the node's default defect density; negative
  /// canonical value means "use the node database default".
  tech::DefectDensity defect_density_override{-1.0};
};

/// Result decomposition of the per-die manufacturing CFP.
struct ManufacturingBreakdown {
  units::CarbonMass energy;     ///< CI_fab * EPA * A / Y
  units::CarbonMass gases;      ///< GPA * A / Y
  units::CarbonMass materials;  ///< Eq. (5) blend * A / Y
  double yield = 1.0;           ///< die yield used

  [[nodiscard]] units::CarbonMass total() const { return energy + gases + materials; }
};

/// ACT-style per-good-die manufacturing CFP model.
class FabModel {
 public:
  explicit FabModel(FabParameters parameters = {});

  [[nodiscard]] const FabParameters& parameters() const { return parameters_; }

  /// Blended materials CFP per unit area at this model's rho (Eq. 5).
  [[nodiscard]] units::CarbonPerArea materials_per_area(tech::ProcessNode node) const;

  /// Total manufacturing CFP per unit area (before yield division).
  [[nodiscard]] units::CarbonPerArea carbon_per_area(tech::ProcessNode node) const;

  /// Die yield for `die_area` at `node` under this model's yield spec.
  [[nodiscard]] double yield(tech::ProcessNode node, units::Area die_area) const;

  /// Full manufacturing CFP of one good die.  Throws std::invalid_argument
  /// for non-positive die area.
  [[nodiscard]] ManufacturingBreakdown manufacture_die(tech::ProcessNode node,
                                                       units::Area die_area) const;

  /// Alternative per-good-die accounting that charges whole processed
  /// wafers to their yielded dies:
  ///
  ///     C_die = CPA * A_wafer / ( DPW(A_die) * Y(A_die) )
  ///
  /// Unlike `manufacture_die` (ACT's per-area rule), this captures wafer
  /// edge losses, which penalise large reticle-scale dies a few extra
  /// percent.  Throws std::invalid_argument if the die does not fit the
  /// wafer.  Compared against the per-area rule in
  /// bench/extension_wafer_accounting.
  [[nodiscard]] ManufacturingBreakdown manufacture_die_wafer_based(
      tech::ProcessNode node, units::Area die_area, double wafer_diameter_mm = 300.0,
      double edge_exclusion_mm = 3.0) const;

 private:
  FabParameters parameters_;
};

}  // namespace greenfpga::act

#endif  // GREENFPGA_ACT_FAB_MODEL_HPP
