#ifndef GREENFPGA_ACT_CARBON_INTENSITY_HPP
#define GREENFPGA_ACT_CARBON_INTENSITY_HPP

/// \file carbon_intensity.hpp
/// Carbon-intensity database for energy sources and grid regions.
///
/// The paper's models multiply energies by the carbon intensity of the
/// energy *source* used in each lifecycle phase: the design house's grid
/// (`C_src,des`), the fab's energy mix, and the deployment region's grid
/// (`C_src,use`).  This module encodes the standard lifecycle carbon
/// intensities per generation technology (IPCC AR5 median values, the same
/// table the ACT tool ships) and representative regional grid mixes, plus a
/// mix-builder for custom fab energy portfolios (e.g. "30 % renewable,
/// remainder Taiwan grid").

#include <span>
#include <string>
#include <vector>

#include "units/quantity.hpp"

namespace greenfpga::act {

/// Electricity generation technologies with distinct lifecycle intensities.
enum class EnergySource {
  coal,
  gas,
  biomass,
  solar,
  geothermal,
  hydropower,
  wind,
  nuclear,
};

/// Representative regional grid mixes (annual average intensities).
enum class GridRegion {
  world_average,
  usa,
  europe,
  taiwan,
  south_korea,
  japan,
  china,
  india,
  iceland,
};

[[nodiscard]] std::string to_string(EnergySource source);
[[nodiscard]] std::string to_string(GridRegion region);
[[nodiscard]] std::span<const EnergySource> all_energy_sources();
[[nodiscard]] std::span<const GridRegion> all_grid_regions();

/// Lifecycle carbon intensity of one generation technology.
[[nodiscard]] units::CarbonIntensity source_intensity(EnergySource source);

/// Annual-average grid intensity of a region.
[[nodiscard]] units::CarbonIntensity grid_intensity(GridRegion region);

/// One component of a custom energy mix.
struct MixComponent {
  EnergySource source = EnergySource::solar;
  double fraction = 0.0;  ///< share of total energy, in [0, 1]
};

/// Weighted average intensity of a custom mix.  Fractions must be
/// non-negative and sum to 1 within 1e-6; throws std::invalid_argument
/// otherwise.
[[nodiscard]] units::CarbonIntensity mix_intensity(std::span<const MixComponent> mix);

/// Intensity of a grid partially offset by renewables: the common
/// sustainability-report situation of "X % renewable energy, remainder from
/// the local grid" (e.g. a fab's power-purchase agreements).
/// `renewable_fraction` in [0, 1]; the renewable share is modelled at the
/// given `renewable` source's intensity.
[[nodiscard]] units::CarbonIntensity offset_grid_intensity(
    GridRegion region, double renewable_fraction,
    EnergySource renewable = EnergySource::solar);

}  // namespace greenfpga::act

#endif  // GREENFPGA_ACT_CARBON_INTENSITY_HPP
