/// \file grid_profile.cpp
/// Daily intensity profiles and duty-scheduling policy arithmetic.

#include "act/grid_profile.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace greenfpga::act {

std::string to_string(DutySchedulingPolicy policy) {
  switch (policy) {
    case DutySchedulingPolicy::uniform:
      return "uniform";
    case DutySchedulingPolicy::carbon_aware:
      return "carbon-aware";
    case DutySchedulingPolicy::worst_case:
      return "worst-case";
  }
  return "unknown";
}

DailyProfile::DailyProfile() { multipliers_.fill(1.0); }

DailyProfile::DailyProfile(const std::array<double, 24>& multipliers)
    : multipliers_(multipliers) {
  double sum = 0.0;
  for (const double m : multipliers_) {
    if (m <= 0.0) {
      throw std::invalid_argument("DailyProfile: multipliers must be positive");
    }
    sum += m;
  }
  // Normalise so a uniform (flat-duty) schedule sees exactly the annual
  // mean intensity.
  const double mean = sum / 24.0;
  for (double& m : multipliers_) {
    m /= mean;
  }
}

DailyProfile DailyProfile::solar_duck() {
  // Hour 0 = midnight.  High overnight (gas/coal baseload), trough around
  // noon (PV), steep evening ramp.  Magnitudes follow published duck-curve
  // shapes (California/Australia-style grids).
  return DailyProfile(std::array<double, 24>{
      1.15, 1.15, 1.15, 1.15, 1.15, 1.10,  // 00-05: night baseload
      1.00, 0.85, 0.70, 0.60, 0.52, 0.48,  // 06-11: sun ramps in
      0.45, 0.45, 0.48, 0.55, 0.70, 0.95,  // 12-17: solar trough, late ramp
      1.30, 1.45, 1.45, 1.35, 1.25, 1.20,  // 18-23: evening peak
  });
}

DailyProfile DailyProfile::windy_night() {
  // Wind-heavy grids run greener overnight; excursions are milder.
  return DailyProfile(std::array<double, 24>{
      0.80, 0.78, 0.76, 0.76, 0.78, 0.82,  // 00-05
      0.90, 1.00, 1.08, 1.12, 1.14, 1.15,  // 06-11
      1.15, 1.14, 1.12, 1.10, 1.10, 1.12,  // 12-17
      1.15, 1.12, 1.05, 0.95, 0.88, 0.83,  // 18-23
  });
}

double DailyProfile::multiplier(int hour) const {
  if (hour < 0 || hour >= 24) {
    throw std::invalid_argument("DailyProfile: hour must be in [0, 24)");
  }
  return multipliers_[static_cast<std::size_t>(hour)];
}

double DailyProfile::effective_multiplier(double duty,
                                          DutySchedulingPolicy policy) const {
  if (duty <= 0.0 || duty > 1.0) {
    throw std::invalid_argument("effective_multiplier: duty must be in (0, 1]");
  }
  if (policy == DutySchedulingPolicy::uniform) {
    return 1.0;  // normalised profiles average to the annual mean
  }
  // Pack `duty * 24` hours into the cheapest (or dearest) slots; the
  // marginal slot is used fractionally.
  std::array<double, 24> sorted = multipliers_;
  std::sort(sorted.begin(), sorted.end());
  if (policy == DutySchedulingPolicy::worst_case) {
    std::reverse(sorted.begin(), sorted.end());
  }
  const double active_hours = duty * 24.0;
  const int whole = static_cast<int>(std::floor(active_hours));
  const double fraction = active_hours - whole;
  double weighted = std::accumulate(sorted.begin(), sorted.begin() + whole, 0.0);
  if (whole < 24 && fraction > 0.0) {
    weighted += sorted[static_cast<std::size_t>(whole)] * fraction;
  }
  return weighted / active_hours;
}

units::CarbonIntensity scheduled_intensity(units::CarbonIntensity annual_mean,
                                           const DailyProfile& profile, double duty,
                                           DutySchedulingPolicy policy) {
  return annual_mean * profile.effective_multiplier(duty, policy);
}

}  // namespace greenfpga::act
