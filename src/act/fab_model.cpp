/// \file fab_model.cpp
/// Eq. 5 manufacturing CFP: per-node EPA/GPA data and the 1/Y good-die charge.

#include "act/fab_model.hpp"

#include <array>
#include <numbers>
#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::act {

namespace {

using units::unit::kg_per_cm2;
using units::unit::kwh_per_cm2;

struct FabTableEntry {
  tech::ProcessNode node;
  FabNodeData data;
};

/// EPA follows the ACT dataset's published curve (0.9 kWh/cm^2 at 28 nm
/// rising to ~3.7 at 3 nm); GPA rises mildly with process complexity; MPA
/// is ACT's constant 0.5 kg CO2e/cm^2, with the recycled-feedstock variant
/// at 50 % of virgin sourcing CFP (documented approximation of [27, 28]).
const std::array<FabTableEntry, 10> kFabTable{{
    {tech::ProcessNode::n28,
     {0.900 * kwh_per_cm2, 0.100 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n20,
     {1.200 * kwh_per_cm2, 0.110 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n16,
     {1.200 * kwh_per_cm2, 0.115 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n14,
     {1.200 * kwh_per_cm2, 0.120 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n12,
     {1.250 * kwh_per_cm2, 0.125 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n10,
     {1.475 * kwh_per_cm2, 0.130 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n8,
     {1.657 * kwh_per_cm2, 0.150 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n7,
     {1.748 * kwh_per_cm2, 0.170 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n5,
     {2.750 * kwh_per_cm2, 0.250 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
    {tech::ProcessNode::n3,
     {3.725 * kwh_per_cm2, 0.300 * kg_per_cm2, 0.500 * kg_per_cm2, 0.250 * kg_per_cm2}},
}};

}  // namespace

const FabNodeData& fab_node_data(tech::ProcessNode node) {
  for (const FabTableEntry& entry : kFabTable) {
    if (entry.node == node) return entry.data;
  }
  throw std::out_of_range("fab_node_data: unknown process node");
}

FabModel::FabModel(FabParameters parameters) : parameters_(parameters) {
  if (parameters_.recycled_material_fraction < 0.0 ||
      parameters_.recycled_material_fraction > 1.0) {
    throw std::invalid_argument("FabModel: recycled material fraction must be in [0, 1]");
  }
}

units::CarbonPerArea FabModel::materials_per_area(tech::ProcessNode node) const {
  const FabNodeData& data = fab_node_data(node);
  const double rho = parameters_.recycled_material_fraction;
  // Eq. (5): blend recycled and newly-extracted sourcing CFP.
  return data.materials_recycled * rho + data.materials_new * (1.0 - rho);
}

units::CarbonPerArea FabModel::carbon_per_area(tech::ProcessNode node) const {
  const FabNodeData& data = fab_node_data(node);
  // Energy term: (kg/kWh) * (kWh/mm^2) -> kg/mm^2 via the quantity algebra.
  const units::CarbonPerArea energy_term =
      parameters_.fab_energy_intensity * data.energy_per_area;
  return energy_term + data.gas_per_area + materials_per_area(node);
}

double FabModel::yield(tech::ProcessNode node, units::Area die_area) const {
  const tech::DefectDensity d0 = parameters_.defect_density_override.canonical() >= 0.0
                                     ? parameters_.defect_density_override
                                     : tech::node_info(node).defect_density;
  return tech::die_yield(die_area, d0, parameters_.yield);
}

ManufacturingBreakdown FabModel::manufacture_die(tech::ProcessNode node,
                                                 units::Area die_area) const {
  if (die_area.canonical() <= 0.0) {
    throw std::invalid_argument("manufacture_die: die area must be positive");
  }
  const FabNodeData& data = fab_node_data(node);
  const double y = yield(node, die_area);
  // Carbon of scrapped dies is charged to good dies: divide by yield.
  const units::Area effective_area = die_area / y;
  return ManufacturingBreakdown{
      .energy = parameters_.fab_energy_intensity * data.energy_per_area * effective_area,
      .gases = data.gas_per_area * effective_area,
      .materials = materials_per_area(node) * effective_area,
      .yield = y,
  };
}

ManufacturingBreakdown FabModel::manufacture_die_wafer_based(tech::ProcessNode node,
                                                             units::Area die_area,
                                                             double wafer_diameter_mm,
                                                             double edge_exclusion_mm) const {
  if (die_area.canonical() <= 0.0) {
    throw std::invalid_argument("manufacture_die_wafer_based: die area must be positive");
  }
  const int gross_dies = tech::dies_per_wafer(die_area, wafer_diameter_mm, edge_exclusion_mm);
  if (gross_dies < 1) {
    throw std::invalid_argument(
        "manufacture_die_wafer_based: die does not fit the wafer");
  }
  const double y = yield(node, die_area);
  const double good_dies = static_cast<double>(gross_dies) * y;
  // The whole wafer is processed regardless of how well it tiles.
  const double radius_mm = wafer_diameter_mm / 2.0;
  const units::Area wafer_area{std::numbers::pi * radius_mm * radius_mm};
  const units::Area effective_area = wafer_area / good_dies;
  const FabNodeData& data = fab_node_data(node);
  return ManufacturingBreakdown{
      .energy = parameters_.fab_energy_intensity * data.energy_per_area * effective_area,
      .gases = data.gas_per_area * effective_area,
      .materials = materials_per_area(node) * effective_area,
      .yield = y,
  };
}

}  // namespace greenfpga::act
