/// \file carbon_intensity.cpp
/// IPCC AR5 per-source intensities, regional grid mixes and mix arithmetic.

#include "act/carbon_intensity.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::act {

namespace {

using units::unit::g_per_kwh;

struct SourceEntry {
  EnergySource source;
  const char* name;
  double g_co2e_per_kwh;  ///< IPCC AR5 median lifecycle intensity
};

constexpr std::array<SourceEntry, 8> kSources{{
    {EnergySource::coal, "coal", 820.0},
    {EnergySource::gas, "gas", 490.0},
    {EnergySource::biomass, "biomass", 230.0},
    {EnergySource::solar, "solar", 41.0},
    {EnergySource::geothermal, "geothermal", 38.0},
    {EnergySource::hydropower, "hydropower", 24.0},
    {EnergySource::wind, "wind", 11.0},
    {EnergySource::nuclear, "nuclear", 12.0},
}};

struct RegionEntry {
  GridRegion region;
  const char* name;
  double g_co2e_per_kwh;  ///< representative annual average grid intensity
};

constexpr std::array<RegionEntry, 9> kRegions{{
    {GridRegion::world_average, "world-average", 475.0},
    {GridRegion::usa, "usa", 380.0},
    {GridRegion::europe, "europe", 295.0},
    {GridRegion::taiwan, "taiwan", 509.0},
    {GridRegion::south_korea, "south-korea", 415.0},
    {GridRegion::japan, "japan", 462.0},
    {GridRegion::china, "china", 555.0},
    {GridRegion::india, "india", 708.0},
    {GridRegion::iceland, "iceland", 28.0},
}};

constexpr std::array<EnergySource, 8> kAllSources{
    EnergySource::coal,       EnergySource::gas,  EnergySource::biomass, EnergySource::solar,
    EnergySource::geothermal, EnergySource::hydropower, EnergySource::wind, EnergySource::nuclear,
};

constexpr std::array<GridRegion, 9> kAllRegions{
    GridRegion::world_average, GridRegion::usa,   GridRegion::europe,
    GridRegion::taiwan,        GridRegion::south_korea, GridRegion::japan,
    GridRegion::china,         GridRegion::india, GridRegion::iceland,
};

}  // namespace

std::string to_string(EnergySource source) {
  for (const SourceEntry& e : kSources) {
    if (e.source == source) return e.name;
  }
  return "unknown";
}

std::string to_string(GridRegion region) {
  for (const RegionEntry& e : kRegions) {
    if (e.region == region) return e.name;
  }
  return "unknown";
}

std::span<const EnergySource> all_energy_sources() { return kAllSources; }
std::span<const GridRegion> all_grid_regions() { return kAllRegions; }

units::CarbonIntensity source_intensity(EnergySource source) {
  for (const SourceEntry& e : kSources) {
    if (e.source == source) return e.g_co2e_per_kwh * g_per_kwh;
  }
  throw std::out_of_range("source_intensity: unknown energy source");
}

units::CarbonIntensity grid_intensity(GridRegion region) {
  for (const RegionEntry& e : kRegions) {
    if (e.region == region) return e.g_co2e_per_kwh * g_per_kwh;
  }
  throw std::out_of_range("grid_intensity: unknown grid region");
}

units::CarbonIntensity mix_intensity(std::span<const MixComponent> mix) {
  if (mix.empty()) {
    throw std::invalid_argument("mix_intensity: empty mix");
  }
  double total_fraction = 0.0;
  units::CarbonIntensity total{};
  for (const MixComponent& component : mix) {
    if (component.fraction < 0.0) {
      throw std::invalid_argument("mix_intensity: negative fraction");
    }
    total_fraction += component.fraction;
    total += source_intensity(component.source) * component.fraction;
  }
  if (std::fabs(total_fraction - 1.0) > 1e-6) {
    throw std::invalid_argument("mix_intensity: fractions must sum to 1");
  }
  return total;
}

units::CarbonIntensity offset_grid_intensity(GridRegion region, double renewable_fraction,
                                             EnergySource renewable) {
  if (renewable_fraction < 0.0 || renewable_fraction > 1.0) {
    throw std::invalid_argument("offset_grid_intensity: fraction must be in [0, 1]");
  }
  return source_intensity(renewable) * renewable_fraction +
         grid_intensity(region) * (1.0 - renewable_fraction);
}

}  // namespace greenfpga::act
