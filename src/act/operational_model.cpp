/// \file operational_model.cpp
/// Use-phase energy and carbon (CI_use * P_peak * duty * t, with PUE).

#include "act/operational_model.hpp"

#include <stdexcept>

#include "units/units.hpp"

namespace greenfpga::act {

OperationalModel::OperationalModel(OperationalParameters parameters) : parameters_(parameters) {
  if (parameters_.duty_cycle < 0.0 || parameters_.duty_cycle > 1.0) {
    throw std::invalid_argument("OperationalModel: duty cycle must be in [0, 1]");
  }
  if (parameters_.power_usage_effectiveness < 1.0) {
    throw std::invalid_argument("OperationalModel: PUE must be >= 1");
  }
}

units::Energy OperationalModel::energy_use(units::Power peak_power,
                                           units::TimeSpan duration) const {
  if (peak_power.canonical() < 0.0) {
    throw std::invalid_argument("energy_use: negative power");
  }
  if (duration.canonical() < 0.0) {
    throw std::invalid_argument("energy_use: negative duration");
  }
  return peak_power * duration * parameters_.duty_cycle *
         parameters_.power_usage_effectiveness;
}

units::CarbonMass OperationalModel::operational_carbon(units::Power peak_power,
                                                       units::TimeSpan duration) const {
  return parameters_.use_intensity * energy_use(peak_power, duration);
}

units::CarbonMass OperationalModel::annual_carbon(units::Power peak_power) const {
  return operational_carbon(peak_power, units::unit::years);
}

}  // namespace greenfpga::act
