#ifndef GREENFPGA_ACT_GRID_PROFILE_HPP
#define GREENFPGA_ACT_GRID_PROFILE_HPP

/// \file grid_profile.hpp
/// Time-varying grid carbon intensity and carbon-aware duty scheduling.
///
/// The paper's operational model (§3.3(1)) uses a flat annual-average
/// `C_src,use`.  Real grids swing by 2x and more over a day (solar duck
/// curves) and across seasons.  Reconfigurable accelerators with deferrable
/// work can *choose when to run* -- a sustainability lever unique to
/// flexible platforms, in the same spirit as the paper's reconfigurability
/// argument.  This module models:
///
///   * a 24-hour intensity profile (per-hour multipliers over the annual
///     mean, normalised so the flat-schedule average is preserved), and
///   * duty scheduling policies: `uniform` (the paper's assumption),
///     `carbon_aware` (pack the duty cycle into the greenest hours) and
///     `worst_case` (the adversarial bound).
///
/// `scheduled_intensity` returns the *effective* carbon intensity seen by
/// a device at a given duty cycle under a policy; it plugs directly into
/// `OperationalParameters::use_intensity`.

#include <array>
#include <string>

#include "act/carbon_intensity.hpp"
#include "units/quantity.hpp"

namespace greenfpga::act {

/// How a device's active hours are placed within the day.
enum class DutySchedulingPolicy {
  uniform,       ///< active time spread evenly (paper's flat model)
  carbon_aware,  ///< active time packed into the lowest-intensity hours
  worst_case,    ///< active time packed into the highest-intensity hours
};

[[nodiscard]] std::string to_string(DutySchedulingPolicy policy);

/// A normalised 24-hour intensity shape: multipliers over the annual-mean
/// intensity, averaging exactly 1.0 across the day.
class DailyProfile {
 public:
  /// Uniform profile (multiplier 1.0 everywhere).
  DailyProfile();

  /// Build from 24 multipliers; they are rescaled to average 1.0.
  /// Throws std::invalid_argument on non-positive entries.
  explicit DailyProfile(const std::array<double, 24>& multipliers);

  /// A solar-heavy grid: low mid-day intensity (plentiful PV), evening
  /// peak -- the classic duck curve.
  [[nodiscard]] static DailyProfile solar_duck();
  /// A wind-heavy grid: mildly cheaper at night, flatter overall.
  [[nodiscard]] static DailyProfile windy_night();

  [[nodiscard]] double multiplier(int hour) const;

  /// Mean multiplier over the `duty` fraction of the day chosen by
  /// `policy` (1.0 for uniform by construction).  `duty` in (0, 1].
  [[nodiscard]] double effective_multiplier(double duty, DutySchedulingPolicy policy) const;

 private:
  std::array<double, 24> multipliers_;
};

/// Effective carbon intensity for a device at `duty` cycle under `policy`
/// on a grid with the given annual mean and daily shape.
[[nodiscard]] units::CarbonIntensity scheduled_intensity(units::CarbonIntensity annual_mean,
                                                         const DailyProfile& profile,
                                                         double duty,
                                                         DutySchedulingPolicy policy);

}  // namespace greenfpga::act

#endif  // GREENFPGA_ACT_GRID_PROFILE_HPP
