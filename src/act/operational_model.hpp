#ifndef GREENFPGA_ACT_OPERATIONAL_MODEL_HPP
#define GREENFPGA_ACT_OPERATIONAL_MODEL_HPP

/// \file operational_model.hpp
/// Operational (use-phase) carbon model (paper §3.3(1)).
///
///     C_op = C_src,use * E_use,      E_use = P_peak * duty * t
///
/// The energy drawn in the field is peak power derated by a duty cycle,
/// accumulated over deployed time, and converted to carbon via the
/// deployment region's grid intensity.  An optional PUE-style overhead
/// multiplier models datacenter cooling/power-delivery losses (1.0 = edge
/// device with no facility overhead).

#include "act/carbon_intensity.hpp"
#include "units/quantity.hpp"

namespace greenfpga::act {

/// Use-phase parameters for one deployment.
struct OperationalParameters {
  /// Grid intensity where the device operates (C_src,use).
  units::CarbonIntensity use_intensity = grid_intensity(GridRegion::usa);
  /// Fraction of time the device draws peak power, in [0, 1].
  double duty_cycle = 0.5;
  /// Facility overhead multiplier (PUE); >= 1.  1.0 for edge devices.
  double power_usage_effectiveness = 1.0;
};

/// Operational model: converts device power and deployed time into energy
/// and carbon.  Stateless aside from its parameters.
class OperationalModel {
 public:
  explicit OperationalModel(OperationalParameters parameters = {});

  [[nodiscard]] const OperationalParameters& parameters() const { return parameters_; }

  /// E_use for one device drawing `peak_power` for `duration` of wall time.
  [[nodiscard]] units::Energy energy_use(units::Power peak_power,
                                         units::TimeSpan duration) const;

  /// C_op for one device over `duration`.
  [[nodiscard]] units::CarbonMass operational_carbon(units::Power peak_power,
                                                     units::TimeSpan duration) const;

  /// Convenience: C_op per year of deployment for one device.
  [[nodiscard]] units::CarbonMass annual_carbon(units::Power peak_power) const;

 private:
  OperationalParameters parameters_;
};

}  // namespace greenfpga::act

#endif  // GREENFPGA_ACT_OPERATIONAL_MODEL_HPP
