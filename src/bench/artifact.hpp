#ifndef GREENFPGA_BENCH_ARTIFACT_HPP
#define GREENFPGA_BENCH_ARTIFACT_HPP

/// \file artifact.hpp
/// The canonical `BENCH_<group>.json` bench artifact.
///
/// One artifact per case group, written through `io::Json` so it inherits
/// the repo-wide canonical form: sorted keys, `io::format_number`
/// shortest-round-trip numerics, and a byte-identical
/// serialize -> parse -> re-serialize round-trip (pinned by
/// tests/bench_artifact_test.cpp).  The files are checked in at the repo
/// root as the performance baseline of record and compared per-PR by the
/// CI bench gate (bench/compare.hpp).

#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "io/json.hpp"

namespace greenfpga::bench {

/// Current artifact schema tag, bumped on incompatible shape changes so a
/// stale baseline fails loudly instead of comparing garbage.
inline constexpr const char* kArtifactSchema = "greenfpga-bench/1";

/// One BENCH_<group>.json: the group's measured cases plus the machine
/// fingerprint that produced them.
struct BenchArtifact {
  std::string schema = kArtifactSchema;
  std::string group;
  Environment environment;
  std::vector<CaseResult> cases;
};

[[nodiscard]] io::Json environment_to_json(const Environment& env);
[[nodiscard]] Environment environment_from_json(const io::Json& json);

[[nodiscard]] io::Json artifact_to_json(const BenchArtifact& artifact);

/// Inverse of `artifact_to_json`.  Throws io::JsonError on a malformed
/// document or a schema tag this build does not understand.
[[nodiscard]] BenchArtifact artifact_from_json(const io::Json& json);

/// The conventional file name of a group's artifact ("BENCH_engine.json").
[[nodiscard]] std::string artifact_filename(const std::string& group);

/// Write `artifact` canonically (pretty-printed, trailing newline) to
/// `path`, creating parent directories as needed.
void write_artifact_file(const std::string& path, const BenchArtifact& artifact);

/// Read and validate one artifact file.
[[nodiscard]] BenchArtifact read_artifact_file(const std::string& path);

/// Group `results` into one artifact per distinct group, in first-seen
/// order, all stamped with `env`.
[[nodiscard]] std::vector<BenchArtifact> artifacts_from_results(
    const std::vector<CaseResult>& results, const Environment& env);

}  // namespace greenfpga::bench

#endif  // GREENFPGA_BENCH_ARTIFACT_HPP
