#ifndef GREENFPGA_BENCH_HARNESS_HPP
#define GREENFPGA_BENCH_HARNESS_HPP

/// \file harness.hpp
/// A dependency-free micro-benchmark harness with a case registry.
///
/// The repo tracks its hot paths (engine grid, Monte-Carlo sampler, batch
/// pool, JSON codec, result cache) as first-class artifacts: `greenfpga
/// bench` runs the registered cases and emits one canonical
/// `BENCH_<group>.json` per case group (see bench/artifact.hpp), which is
/// checked in as the performance baseline and enforced by CI
/// (bench/compare.hpp).  Unlike the Google-Benchmark `bench/` drivers,
/// this harness has no external dependency, so timings exist on every
/// machine that can build the library.
///
/// Timing model: a case's `setup` runs once (untimed) and returns the
/// operation closure; the harness then runs `warmup` untimed batches
/// followed by `repetitions` timed batches of `iterations` operations
/// each, reading the (injectable) nanosecond clock once before and once
/// after every timed batch.  Each batch yields one per-operation seconds
/// sample; the robust summary over those samples (bench/stats.hpp) is the
/// case's result.  `iterations > 1` amortises clock overhead for
/// sub-microsecond operations.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench/stats.hpp"

namespace greenfpga::bench {

/// What a case's setup hands the timing loop.
struct PreparedCase {
  /// One operation; called `iterations` times per timed batch.
  std::function<void()> op;
  /// Operations per timed batch (>= 1 enforced); raise it until one batch
  /// comfortably exceeds clock granularity.
  std::int64_t iterations = 1;
  /// Bytes consumed or produced per operation; > 0 derives bytes/s.
  double bytes_per_op = 0.0;
};

/// One registered micro-benchmark case.  Its artifact identity is
/// `group/name`: the group names the BENCH_<group>.json file, the name
/// the case within it.
struct BenchCase {
  std::string group;
  std::string name;
  std::string description;
  /// Untimed one-time setup returning the operation to time.
  std::function<PreparedCase()> setup;

  /// The artifact/compare identity, "group/name".
  [[nodiscard]] std::string id() const { return group + "/" + name; }
};

/// Harness knobs.  `--quick` keeps every case's workload identical (so
/// medians stay comparable against full-mode baselines) and only lowers
/// warmup/repetitions, trading statistical quality for wall-clock time.
struct BenchOptions {
  int warmup = 2;
  int repetitions = 15;
  /// Nanosecond clock; nullptr = std::chrono::steady_clock.  Injectable
  /// so tests can pin the accounting with a scripted clock.
  std::function<std::uint64_t()> clock_ns;

  [[nodiscard]] static BenchOptions quick() {
    return BenchOptions{.warmup = 1, .repetitions = 5, .clock_ns = nullptr};
  }
};

/// One case's measured result (the artifact row).
struct CaseResult {
  std::string group;
  std::string name;
  int warmup = 0;
  int repetitions = 0;
  std::int64_t iterations = 1;
  /// Per-operation seconds over the timed batches.
  SampleStats seconds;
  /// 1 / seconds.median (operations per second at the median).
  double ops_per_s = 0.0;
  /// bytes_per_op / seconds.median; 0 when the case declares no bytes.
  double bytes_per_s = 0.0;

  [[nodiscard]] std::string id() const { return group + "/" + name; }
};

/// Build a `CaseResult` from already-measured per-operation seconds
/// samples (the shared tail of `run_case`; also the entry point for
/// external drivers -- bench/serve_throughput.cpp feeds per-request
/// latencies through here to emit BENCH_serve.json).
[[nodiscard]] CaseResult result_from_samples(std::string group, std::string name,
                                             int warmup, std::int64_t iterations,
                                             std::vector<double> per_op_seconds,
                                             double bytes_per_op = 0.0);

/// Run one case under `options` (setup, warmup batches, timed batches,
/// summary).  Throws std::invalid_argument on a case whose setup yields
/// no op or iterations < 1, and propagates whatever the case throws.
[[nodiscard]] CaseResult run_case(const BenchCase& bench_case,
                                  const BenchOptions& options = {});

/// The machine fingerprint recorded in every artifact, so a baseline
/// number can be traced to the hardware/toolchain that produced it
/// (comparison logic deliberately ignores it: CI tolerances absorb
/// machine differences).
struct Environment {
  int cores = 0;
  std::string compiler;    ///< e.g. "gcc 12.2.0"
  std::string build_type;  ///< "release" (NDEBUG) or "debug"
  std::string os;          ///< "linux", "darwin", "windows", "unknown"
  int pointer_bits = 0;
};

[[nodiscard]] Environment capture_environment();

/// The built-in case registry: the five hot paths tracked per-PR --
/// engine (50x50 heat-map grid), mc (Monte-Carlo sampling), batch
/// (mixed-fleet run_batch), json (parse/dump of a large canonical
/// result), cache (ResultCache hit/miss).  Deterministic order (artifact
/// files list cases in registry order).
[[nodiscard]] std::vector<BenchCase> builtin_cases();

}  // namespace greenfpga::bench

#endif  // GREENFPGA_BENCH_HARNESS_HPP
