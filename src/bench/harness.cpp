#include "bench/harness.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

namespace greenfpga::bench {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

CaseResult result_from_samples(std::string group, std::string name, int warmup,
                               std::int64_t iterations,
                               std::vector<double> per_op_seconds,
                               double bytes_per_op) {
  CaseResult result;
  result.group = std::move(group);
  result.name = std::move(name);
  result.warmup = warmup;
  result.repetitions = static_cast<int>(per_op_seconds.size());
  result.iterations = iterations;
  result.seconds = compute_stats(std::move(per_op_seconds));
  // A zero median (clock granularity under-run) must not divide; such a
  // case needs more iterations per batch, and infinite ops/s would hide
  // that.
  result.ops_per_s = result.seconds.median > 0.0 ? 1.0 / result.seconds.median : 0.0;
  result.bytes_per_s = (bytes_per_op > 0.0 && result.seconds.median > 0.0)
                           ? bytes_per_op / result.seconds.median
                           : 0.0;
  return result;
}

CaseResult run_case(const BenchCase& bench_case, const BenchOptions& options) {
  if (!bench_case.setup) {
    throw std::invalid_argument("bench case '" + bench_case.id() + "': no setup");
  }
  if (options.repetitions < 1) {
    throw std::invalid_argument("bench case '" + bench_case.id() +
                                "': repetitions must be >= 1");
  }
  const PreparedCase prepared = bench_case.setup();
  if (!prepared.op) {
    throw std::invalid_argument("bench case '" + bench_case.id() + "': setup yielded no op");
  }
  if (prepared.iterations < 1) {
    throw std::invalid_argument("bench case '" + bench_case.id() +
                                "': iterations must be >= 1");
  }
  const std::function<std::uint64_t()>& clock =
      options.clock_ns ? options.clock_ns
                       : std::function<std::uint64_t()>(steady_now_ns);

  const auto run_batch = [&prepared] {
    for (std::int64_t i = 0; i < prepared.iterations; ++i) {
      prepared.op();
    }
  };
  // Warmup batches are untimed -- the clock is never consulted, which the
  // fake-clock tests pin (a warmup that read the clock would skew the
  // scripted sample sequence).
  for (int w = 0; w < options.warmup; ++w) {
    run_batch();
  }
  std::vector<double> per_op_seconds;
  per_op_seconds.reserve(static_cast<std::size_t>(options.repetitions));
  for (int r = 0; r < options.repetitions; ++r) {
    const std::uint64_t start = clock();
    run_batch();
    const std::uint64_t stop = clock();
    per_op_seconds.push_back(static_cast<double>(stop - start) * 1e-9 /
                             static_cast<double>(prepared.iterations));
  }
  return result_from_samples(bench_case.group, bench_case.name, options.warmup,
                             prepared.iterations, std::move(per_op_seconds),
                             prepared.bytes_per_op);
}

Environment capture_environment() {
  Environment env;
  env.cores = static_cast<int>(std::thread::hardware_concurrency());
  std::ostringstream compiler;
#if defined(__clang__)
  compiler << "clang " << __clang_major__ << "." << __clang_minor__ << "."
           << __clang_patchlevel__;
#elif defined(__GNUC__)
  compiler << "gcc " << __GNUC__ << "." << __GNUC_MINOR__ << "."
           << __GNUC_PATCHLEVEL__;
#elif defined(_MSC_VER)
  compiler << "msvc " << _MSC_VER;
#else
  compiler << "unknown";
#endif
  env.compiler = compiler.str();
#if defined(NDEBUG)
  env.build_type = "release";
#else
  env.build_type = "debug";
#endif
#if defined(__linux__)
  env.os = "linux";
#elif defined(__APPLE__)
  env.os = "darwin";
#elif defined(_WIN32)
  env.os = "windows";
#else
  env.os = "unknown";
#endif
  env.pointer_bits = static_cast<int>(8 * sizeof(void*));
  return env;
}

}  // namespace greenfpga::bench
