/// \file cases.cpp
/// The built-in bench case registry: the six hot paths the repo tracks
/// per-PR as BENCH_<group>.json baselines.
///
/// Every case fixes its workload *shape* permanently -- `--quick` only
/// reduces repetitions -- so a median measured in any mode is comparable
/// against the checked-in baseline.  Engines run with threads = 1: the
/// baselines measure single-worker cost, which is what scheduling and
/// model changes move, and stays meaningful on single-core CI runners.

#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "dse/frontier_spec.hpp"
#include "io/json.hpp"
#include "io/json_arena.hpp"
#include "scenario/engine.hpp"
#include "scenario/kind_registry.hpp"
#include "scenario/result_cache.hpp"
#include "scenario/result_io.hpp"
#include "scenario/spec.hpp"

namespace greenfpga::bench {

namespace {

scenario::Engine single_thread_engine() {
  return scenario::Engine(scenario::EngineOptions{.threads = 1});
}

/// The 50x50 DNN volume x lifetime heat-map (the engine_throughput
/// driver's grid): 2500 points x 2 platforms through the memoised
/// embodied-carbon path.
scenario::ScenarioSpec grid_spec() {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::grid, device::Domain::dnn);
  spec.name = "bench engine grid";
  spec.axes = {
      scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e3, 1e7, 50),
      scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years, 0.2, 2.5, 50)};
  return spec;
}

/// 256 Table 1 Monte-Carlo samples x 2 platforms: every sample
/// re-parameterises the suite, so this is the unmemoised full-evaluation
/// path.
scenario::ScenarioSpec mc_spec() {
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::make(
      scenario::ScenarioKind::montecarlo, device::Domain::dnn);
  spec.name = "bench mc";
  spec.montecarlo.samples = 256;
  spec.montecarlo.seed = 42;
  return spec;
}

/// The four-way 16x12 DNN frontier: 192 cells x 4 platforms through the
/// memoised search, plus winner/slice/boundary extraction.
scenario::ScenarioSpec frontier_spec() {
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::make(
      scenario::ScenarioKind::frontier, device::Domain::dnn);
  spec.name = "bench frontier";
  spec.platforms = {scenario::PlatformRef{.name = "asic", .chip = {}},
                    scenario::PlatformRef{.name = "fpga", .chip = {}},
                    scenario::PlatformRef{.name = "gpu", .chip = {}},
                    scenario::PlatformRef{.name = "cpu", .chip = {}}};
  spec.frontier.axes = {
      dse::FrontierAxisSpec::linear(dse::FrontierVariable::app_count, 1, 16, 16),
      dse::FrontierAxisSpec::log(dse::FrontierVariable::volume, 1e3, 1e7, 12)};
  return spec;
}

/// A fleet shaped like examples/specs/batch_manifest.json -- three-way
/// compare, 16-point sweep, 25x24 grid, node DSE, Monte-Carlo -- built in
/// code so the case does not depend on the working directory.
std::vector<scenario::ScenarioSpec> fleet_specs() {
  std::vector<scenario::ScenarioSpec> specs;
  scenario::ScenarioSpec compare = scenario::ScenarioSpec::make(
      scenario::ScenarioKind::compare, device::Domain::crypto);
  compare.platforms = {scenario::PlatformRef{.name = "asic", .chip = {}},
                       scenario::PlatformRef{.name = "fpga", .chip = {}},
                       scenario::PlatformRef{.name = "gpu", .chip = {}}};
  specs.push_back(std::move(compare));
  scenario::ScenarioSpec sweep = scenario::ScenarioSpec::make(
      scenario::ScenarioKind::sweep, device::Domain::imgproc);
  sweep.axes = {
      scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 16, 16)};
  specs.push_back(std::move(sweep));
  scenario::ScenarioSpec grid =
      scenario::ScenarioSpec::make(scenario::ScenarioKind::grid, device::Domain::dnn);
  grid.axes = {
      scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e3, 1e7, 25),
      scenario::AxisSpec::linear(scenario::SweepVariable::lifetime_years, 0.2, 2.5, 24)};
  specs.push_back(std::move(grid));
  specs.push_back(scenario::ScenarioSpec::make(scenario::ScenarioKind::node_dse,
                                               device::Domain::dnn));
  scenario::ScenarioSpec mc = scenario::ScenarioSpec::make(
      scenario::ScenarioKind::montecarlo, device::Domain::dnn);
  mc.montecarlo.samples = 128;
  mc.montecarlo.seed = 7;
  specs.push_back(std::move(mc));
  return specs;
}

/// One small spec per registered scenario kind, enumerated from the kind
/// registry itself: the case exercises every KindModule execute hook
/// through the vtable dispatch path and automatically covers kinds added
/// later.  Sampling counts are pinned low so the case tracks dispatch
/// and per-kind fixed cost, not Monte-Carlo bulk.
std::vector<scenario::ScenarioSpec> registry_specs() {
  std::vector<scenario::ScenarioSpec> specs;
  for (const scenario::KindModule* module : scenario::all_kind_modules()) {
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::make(module->kind, device::Domain::dnn);
    spec.name = "bench registry " + std::string(module->name);
    spec.montecarlo.samples = 16;
    spec.montecarlo.seed = 11;
    spec.sensitivity.samples = 16;
    if (spec.fleet.has_value()) {
      spec.fleet->mc_samples = 8;
    }
    if (module->expected_axes >= 1) {
      spec.axes.push_back(
          scenario::AxisSpec::linear(scenario::SweepVariable::app_count, 1, 4, 4));
    }
    if (module->expected_axes >= 2) {
      spec.axes.push_back(
          scenario::AxisSpec::log(scenario::SweepVariable::volume, 1e5, 1e6, 3));
    }
    if (module->kind == scenario::ScenarioKind::frontier) {
      spec.frontier.axes = {
          dse::FrontierAxisSpec::linear(dse::FrontierVariable::app_count, 1, 4, 4),
          dse::FrontierAxisSpec::log(dse::FrontierVariable::volume, 1e4, 1e6, 3)};
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// The 25x24 grid's canonical result JSON: the "large result" the serve
/// and batch paths round-trip per request (~hundreds of KB of text).
std::string large_result_text() {
  const scenario::ScenarioSpec spec = fleet_specs()[2];
  const scenario::ScenarioResult result = single_thread_engine().run(spec);
  return scenario::result_to_json(result).dump();
}

/// The serve request shape: one spec document as a client would POST it
/// to /v1/run (pretty form, the same bytes `greenfpga run` reads from a
/// file).  Small -- a few KB -- so these cases track per-request fixed
/// cost, not bulk throughput.
std::string spec_request_text() { return scenario::spec_to_json(grid_spec()).dump(); }

/// The /v1/batch request shape: a manifest with the five fleet specs
/// embedded, as POSTed to the daemon.
std::string batch_manifest_text() {
  io::Json manifest = io::Json::object();
  manifest["name"] = "bench fleet";
  io::Json specs = io::Json::array();
  for (const scenario::ScenarioSpec& spec : fleet_specs()) {
    specs.push_back(scenario::spec_to_json(spec));
  }
  manifest["specs"] = std::move(specs);
  return manifest.dump();
}

volatile std::size_t g_sink = 0;  ///< defeats dead-code elimination

}  // namespace

std::vector<BenchCase> builtin_cases() {
  std::vector<BenchCase> cases;

  cases.push_back(BenchCase{
      .group = "engine",
      .name = "grid_50x50",
      .description = "Engine::run of a 50x50 DNN volume x lifetime heat-map "
                     "(2500 points x 2 platforms, memoised embodied carbon, 1 thread)",
      .setup = [] {
        auto engine = std::make_shared<scenario::Engine>(single_thread_engine());
        auto spec = std::make_shared<scenario::ScenarioSpec>(grid_spec());
        return PreparedCase{.op =
                                [engine, spec] {
                                  const scenario::ScenarioResult result =
                                      engine->run(*spec);
                                  g_sink = result.points.size();
                                },
                            .iterations = 1,
                            .bytes_per_op = 0.0};
      }});

  cases.push_back(BenchCase{
      .group = "engine",
      .name = "registry_dispatch",
      .description = "Engine::run of one small spec per registered scenario kind "
                     "(every KindModule execute hook through the registry vtable, "
                     "1 thread)",
      .setup = [] {
        auto engine = std::make_shared<scenario::Engine>(single_thread_engine());
        auto specs =
            std::make_shared<std::vector<scenario::ScenarioSpec>>(registry_specs());
        return PreparedCase{.op =
                                [engine, specs] {
                                  std::size_t sink = 0;
                                  for (const scenario::ScenarioSpec& spec : *specs) {
                                    sink += engine->run(spec).points.size();
                                  }
                                  g_sink = sink;
                                },
                            .iterations = 1,
                            .bytes_per_op = 0.0};
      }});

  cases.push_back(BenchCase{
      .group = "mc",
      .name = "samples_256",
      .description = "Engine::run of a 256-sample DNN Monte-Carlo uncertainty spec "
                     "(full unmemoised evaluation per sample, 1 thread)",
      .setup = [] {
        auto engine = std::make_shared<scenario::Engine>(single_thread_engine());
        auto spec = std::make_shared<scenario::ScenarioSpec>(mc_spec());
        return PreparedCase{.op =
                                [engine, spec] {
                                  const scenario::ScenarioResult result =
                                      engine->run(*spec);
                                  g_sink = result.uncertainty->sample_totals_kg.size();
                                },
                            .iterations = 1,
                            .bytes_per_op = 0.0};
      }});

  cases.push_back(BenchCase{
      .group = "frontier",
      .name = "four_way_16x12",
      .description = "Engine::run of a four-way (asic/fpga/gpu/cpu) DNN frontier "
                     "search over a 16x12 apps x volume grid (192 cells, winner + "
                     "slice + boundary extraction, 1 thread)",
      .setup = [] {
        auto engine = std::make_shared<scenario::Engine>(single_thread_engine());
        auto spec = std::make_shared<scenario::ScenarioSpec>(frontier_spec());
        return PreparedCase{.op =
                                [engine, spec] {
                                  const scenario::ScenarioResult result =
                                      engine->run(*spec);
                                  g_sink = result.frontier->cells.size();
                                },
                            .iterations = 1,
                            .bytes_per_op = 0.0};
      }});

  cases.push_back(BenchCase{
      .group = "batch",
      .name = "fleet_mixed",
      .description = "Engine::run_batch of a 5-spec fleet shaped like "
                     "examples/specs/batch_manifest.json (compare, sweep, 25x24 grid, "
                     "node DSE, 128-sample MC; 1 thread)",
      .setup = [] {
        auto engine = std::make_shared<scenario::Engine>(single_thread_engine());
        auto specs =
            std::make_shared<std::vector<scenario::ScenarioSpec>>(fleet_specs());
        return PreparedCase{.op =
                                [engine, specs] {
                                  const std::vector<scenario::ScenarioResult> results =
                                      engine->run_batch(*specs);
                                  g_sink = results.size();
                                },
                            .iterations = 1,
                            .bytes_per_op = 0.0};
      }});

  cases.push_back(BenchCase{
      .group = "json",
      .name = "parse_result",
      .description = "io::parse_json_arena of a large canonical result document "
                     "(25x24 grid result) -- the serve/cache ingestion path",
      .setup = [] {
        auto text = std::make_shared<std::string>(large_result_text());
        return PreparedCase{.op =
                                [text] {
                                  const io::JsonDocument parsed =
                                      io::parse_json_arena(*text);
                                  g_sink = parsed.root().size();
                                },
                            .iterations = 1,
                            .bytes_per_op = static_cast<double>(text->size())};
      }});

  cases.push_back(BenchCase{
      .group = "json",
      .name = "parse_result_facade",
      .description = "io::parse_json of the same large result document into the "
                     "mutable Json facade (the result re-import path)",
      .setup = [] {
        auto text = std::make_shared<std::string>(large_result_text());
        return PreparedCase{.op =
                                [text] {
                                  const io::Json parsed = io::parse_json(*text);
                                  g_sink = parsed.size();
                                },
                            .iterations = 1,
                            .bytes_per_op = static_cast<double>(text->size())};
      }});

  cases.push_back(BenchCase{
      .group = "json",
      .name = "dump_result",
      .description = "io::Json::dump (compact) of the same large canonical result "
                     "document",
      .setup = [] {
        auto document =
            std::make_shared<io::Json>(io::parse_json(large_result_text()));
        const double bytes = static_cast<double>(document->dump(0).size());
        return PreparedCase{.op =
                                [document] {
                                  const std::string text = document->dump(0);
                                  g_sink = text.size();
                                },
                            .iterations = 1,
                            .bytes_per_op = bytes};
      }});

  cases.push_back(BenchCase{
      .group = "json",
      .name = "parse_spec",
      .description = "io::parse_json_arena with hash-while-parse of one serve "
                     "request body (the /v1/run spec shape, pretty form)",
      .setup = [] {
        auto text = std::make_shared<std::string>(spec_request_text());
        return PreparedCase{.op =
                                [text] {
                                  const io::JsonDocument parsed = io::parse_json_arena(
                                      *text, {}, /*hash_canonical=*/true);
                                  g_sink = static_cast<std::size_t>(
                                      parsed.parse_digest().value_or(0));
                                },
                            .iterations = 32,
                            .bytes_per_op = static_cast<double>(text->size())};
      }});

  cases.push_back(BenchCase{
      .group = "json",
      .name = "dump_spec",
      .description = "io::Json::dump_to_hashed (compact) of one spec document -- "
                     "the engine cache-key serialization",
      .setup = [] {
        auto document = std::make_shared<io::Json>(
            scenario::spec_to_json(grid_spec()));
        const double bytes = static_cast<double>(document->dump(0).size());
        return PreparedCase{.op =
                                [document] {
                                  std::string text;
                                  const std::uint64_t digest =
                                      document->dump_to_hashed(text, 0);
                                  g_sink = text.size() ^ static_cast<std::size_t>(digest);
                                },
                            .iterations = 32,
                            .bytes_per_op = bytes};
      }});

  cases.push_back(BenchCase{
      .group = "json",
      .name = "parse_manifest",
      .description = "io::parse_json_arena of a /v1/batch manifest embedding the "
                     "five fleet specs",
      .setup = [] {
        auto text = std::make_shared<std::string>(batch_manifest_text());
        return PreparedCase{.op =
                                [text] {
                                  const io::JsonDocument parsed =
                                      io::parse_json_arena(*text);
                                  g_sink = parsed.root().size();
                                },
                            .iterations = 8,
                            .bytes_per_op = static_cast<double>(text->size())};
      }});

  cases.push_back(BenchCase{
      .group = "json",
      .name = "dump_manifest",
      .description = "io::Json::dump_to (pretty) of the same batch manifest -- "
                     "the response-assembly direction",
      .setup = [] {
        auto document =
            std::make_shared<io::Json>(io::parse_json(batch_manifest_text()));
        const double bytes = static_cast<double>(document->dump().size());
        return PreparedCase{.op =
                                [document] {
                                  std::string text;
                                  document->dump_to(text);
                                  g_sink = text.size();
                                },
                            .iterations = 8,
                            .bytes_per_op = bytes};
      }});

  cases.push_back(BenchCase{
      .group = "cache",
      .name = "hit",
      .description = "ResultCache::lookup hit over 512 resident keys (content-"
                     "addressed LRU, one shared result)",
      .setup = [] {
        auto cache = std::make_shared<scenario::ResultCache>(1024);
        const scenario::ScenarioSpec spec = scenario::ScenarioSpec::make(
            scenario::ScenarioKind::compare, device::Domain::dnn);
        auto result = std::make_shared<const scenario::ScenarioResult>(
            single_thread_engine().run(spec));
        auto keys = std::make_shared<std::vector<std::string>>();
        for (int i = 0; i < 512; ++i) {
          keys->push_back("bench-key-" + std::to_string(i));
          cache->insert(keys->back(), result);
        }
        auto next = std::make_shared<std::size_t>(0);
        return PreparedCase{.op =
                                [cache, keys, next] {
                                  const auto hit =
                                      cache->lookup((*keys)[*next % keys->size()]);
                                  g_sink = hit ? 1 : 0;
                                  ++*next;
                                },
                            .iterations = 512,
                            .bytes_per_op = 0.0};
      }});

  cases.push_back(BenchCase{
      .group = "cache",
      .name = "miss",
      .description = "ResultCache::lookup miss (absent keys against 512 resident "
                     "entries)",
      .setup = [] {
        auto cache = std::make_shared<scenario::ResultCache>(1024);
        const scenario::ScenarioSpec spec = scenario::ScenarioSpec::make(
            scenario::ScenarioKind::compare, device::Domain::dnn);
        auto result = std::make_shared<const scenario::ScenarioResult>(
            single_thread_engine().run(spec));
        for (int i = 0; i < 512; ++i) {
          cache->insert("bench-key-" + std::to_string(i), result);
        }
        auto keys = std::make_shared<std::vector<std::string>>();
        for (int i = 0; i < 512; ++i) {
          keys->push_back("bench-absent-" + std::to_string(i));
        }
        auto next = std::make_shared<std::size_t>(0);
        return PreparedCase{.op =
                                [cache, keys, next] {
                                  const auto hit =
                                      cache->lookup((*keys)[*next % keys->size()]);
                                  g_sink = hit ? 1 : 0;
                                  ++*next;
                                },
                            .iterations = 512,
                            .bytes_per_op = 0.0};
      }});

  return cases;
}

}  // namespace greenfpga::bench
