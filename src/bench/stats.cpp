#include "bench/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace greenfpga::bench {

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

SampleStats compute_stats(std::vector<double> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("compute_stats: empty sample set");
  }
  std::sort(samples.begin(), samples.end());
  SampleStats stats;
  stats.min = samples.front();
  stats.max = samples.back();
  stats.p10 = percentile(samples, 10.0);
  stats.median = percentile(samples, 50.0);
  stats.p90 = percentile(samples, 90.0);
  stats.p95 = percentile(samples, 95.0);
  stats.p99 = percentile(samples, 99.0);
  stats.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
               static_cast<double>(samples.size());
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (const double sample : samples) {
    deviations.push_back(std::abs(sample - stats.median));
  }
  std::sort(deviations.begin(), deviations.end());
  stats.mad = percentile(deviations, 50.0);
  return stats;
}

}  // namespace greenfpga::bench
