#include "bench/artifact.hpp"

#include <utility>

namespace greenfpga::bench {

io::Json environment_to_json(const Environment& env) {
  io::Json json = io::Json::object();
  json["build_type"] = env.build_type;
  json["compiler"] = env.compiler;
  json["cores"] = env.cores;
  json["os"] = env.os;
  json["pointer_bits"] = env.pointer_bits;
  return json;
}

Environment environment_from_json(const io::Json& json) {
  Environment env;
  env.cores = static_cast<int>(json.at("cores").as_int());
  env.compiler = json.at("compiler").as_string();
  env.build_type = json.at("build_type").as_string();
  env.os = json.at("os").as_string();
  env.pointer_bits = static_cast<int>(json.at("pointer_bits").as_int());
  return env;
}

namespace {

io::Json stats_to_json(const SampleStats& stats) {
  io::Json json = io::Json::object();
  json["mad"] = stats.mad;
  json["max"] = stats.max;
  json["mean"] = stats.mean;
  json["median"] = stats.median;
  json["min"] = stats.min;
  json["p10"] = stats.p10;
  json["p90"] = stats.p90;
  json["p95"] = stats.p95;
  json["p99"] = stats.p99;
  return json;
}

SampleStats stats_from_json(const io::Json& json) {
  SampleStats stats;
  stats.mad = json.at("mad").as_number();
  stats.max = json.at("max").as_number();
  stats.mean = json.at("mean").as_number();
  stats.median = json.at("median").as_number();
  stats.min = json.at("min").as_number();
  stats.p10 = json.at("p10").as_number();
  stats.p90 = json.at("p90").as_number();
  stats.p95 = json.at("p95").as_number();
  stats.p99 = json.at("p99").as_number();
  return stats;
}

io::Json case_to_json(const CaseResult& result) {
  io::Json json = io::Json::object();
  json["bytes_per_s"] = result.bytes_per_s;
  json["group"] = result.group;
  json["iterations"] = result.iterations;
  json["name"] = result.name;
  json["ops_per_s"] = result.ops_per_s;
  json["repetitions"] = result.repetitions;
  json["seconds"] = stats_to_json(result.seconds);
  json["warmup"] = result.warmup;
  return json;
}

CaseResult case_from_json(const io::Json& json) {
  CaseResult result;
  result.group = json.at("group").as_string();
  result.name = json.at("name").as_string();
  result.warmup = static_cast<int>(json.at("warmup").as_int());
  result.repetitions = static_cast<int>(json.at("repetitions").as_int());
  result.iterations = json.at("iterations").as_int();
  result.seconds = stats_from_json(json.at("seconds"));
  result.ops_per_s = json.at("ops_per_s").as_number();
  result.bytes_per_s = json.at("bytes_per_s").as_number();
  return result;
}

}  // namespace

io::Json artifact_to_json(const BenchArtifact& artifact) {
  io::Json json = io::Json::object();
  io::Json cases = io::Json::array();
  for (const CaseResult& result : artifact.cases) {
    cases.push_back(case_to_json(result));
  }
  json["cases"] = std::move(cases);
  json["environment"] = environment_to_json(artifact.environment);
  json["group"] = artifact.group;
  json["schema"] = artifact.schema;
  return json;
}

BenchArtifact artifact_from_json(const io::Json& json) {
  BenchArtifact artifact;
  artifact.schema = json.at("schema").as_string();
  if (artifact.schema != kArtifactSchema) {
    throw io::JsonError("bench artifact: unsupported schema '" + artifact.schema +
                        "' (this build reads '" + kArtifactSchema + "')");
  }
  artifact.group = json.at("group").as_string();
  artifact.environment = environment_from_json(json.at("environment"));
  for (const io::Json& entry : json.at("cases").as_array()) {
    artifact.cases.push_back(case_from_json(entry));
  }
  return artifact;
}

std::string artifact_filename(const std::string& group) {
  return "BENCH_" + group + ".json";
}

void write_artifact_file(const std::string& path, const BenchArtifact& artifact) {
  io::write_json_file(path, artifact_to_json(artifact));
}

BenchArtifact read_artifact_file(const std::string& path) {
  return artifact_from_json(io::parse_json_file(path));
}

std::vector<BenchArtifact> artifacts_from_results(
    const std::vector<CaseResult>& results, const Environment& env) {
  std::vector<BenchArtifact> artifacts;
  for (const CaseResult& result : results) {
    BenchArtifact* artifact = nullptr;
    for (BenchArtifact& candidate : artifacts) {
      if (candidate.group == result.group) {
        artifact = &candidate;
        break;
      }
    }
    if (artifact == nullptr) {
      artifacts.push_back(BenchArtifact{.schema = kArtifactSchema,
                                        .group = result.group,
                                        .environment = env,
                                        .cases = {}});
      artifact = &artifacts.back();
    }
    artifact->cases.push_back(result);
  }
  return artifacts;
}

}  // namespace greenfpga::bench
