#ifndef GREENFPGA_BENCH_COMPARE_HPP
#define GREENFPGA_BENCH_COMPARE_HPP

/// \file compare.hpp
/// The bench regression verdict: fresh results vs checked-in baselines.
///
/// The contract of the CI bench gate: a case regresses when its fresh
/// *median* exceeds the baseline median by strictly more than the
/// tolerated factor (`max_regression`; exactly-at-threshold passes, so a
/// gate at 10x fails only past an order of magnitude -- loose enough for
/// shared runners, tight enough to catch the 2x-and-compounding class of
/// regression).  A baseline case the fresh run did not execute is a
/// failure too -- otherwise renaming a case would silently retire its
/// baseline -- while a fresh case with no baseline yet is informational
/// (the baseline gets checked in with the PR that adds the case).
/// Medians only: environment fingerprints are recorded for forensics, not
/// compared.

#include <string>
#include <vector>

#include "bench/artifact.hpp"

namespace greenfpga::bench {

enum class CaseVerdict {
  ok,        ///< present in both, within tolerance (or faster)
  regressed, ///< fresh median > baseline median * max_regression
  missing,   ///< in a baseline, not in the fresh run: gate failure
  added,     ///< fresh case with no baseline yet: informational
};

[[nodiscard]] std::string to_string(CaseVerdict verdict);

/// One case's comparison row.
struct CaseComparison {
  std::string id;               ///< "group/name"
  CaseVerdict verdict = CaseVerdict::ok;
  double current_median = 0.0;  ///< seconds; 0 when missing
  double baseline_median = 0.0; ///< seconds; 0 when added
  /// current/baseline median ratio (> 1 = slower); 0 unless both present.
  double factor = 0.0;
};

/// Compare fresh `results` against `baselines`, case by case, under the
/// tolerated slowdown `max_regression` (> 0).  Rows come back in baseline
/// order followed by added cases in result order.  Throws
/// std::invalid_argument on max_regression <= 0 or a baseline median <= 0
/// (a corrupt baseline must not vacuously pass).
[[nodiscard]] std::vector<CaseComparison> compare_results(
    const std::vector<CaseResult>& results,
    const std::vector<BenchArtifact>& baselines, double max_regression);

/// True when no row is `regressed` or `missing`.
[[nodiscard]] bool comparison_passes(const std::vector<CaseComparison>& rows);

}  // namespace greenfpga::bench

#endif  // GREENFPGA_BENCH_COMPARE_HPP
