#include "bench/compare.hpp"

#include <stdexcept>
#include <unordered_set>

namespace greenfpga::bench {

std::string to_string(CaseVerdict verdict) {
  switch (verdict) {
    case CaseVerdict::ok: return "ok";
    case CaseVerdict::regressed: return "regressed";
    case CaseVerdict::missing: return "missing";
    case CaseVerdict::added: return "added";
  }
  return "unknown";
}

std::vector<CaseComparison> compare_results(
    const std::vector<CaseResult>& results,
    const std::vector<BenchArtifact>& baselines, double max_regression) {
  if (!(max_regression > 0.0)) {
    throw std::invalid_argument("compare_results: max_regression must be > 0");
  }
  std::vector<CaseComparison> rows;
  std::unordered_set<std::string> matched;
  for (const BenchArtifact& baseline : baselines) {
    for (const CaseResult& base : baseline.cases) {
      if (!(base.seconds.median > 0.0)) {
        throw std::invalid_argument("compare_results: baseline case '" + base.id() +
                                    "' has non-positive median");
      }
      CaseComparison row;
      row.id = base.id();
      row.baseline_median = base.seconds.median;
      const CaseResult* fresh = nullptr;
      for (const CaseResult& candidate : results) {
        if (candidate.group == base.group && candidate.name == base.name) {
          fresh = &candidate;
          break;
        }
      }
      if (fresh == nullptr) {
        row.verdict = CaseVerdict::missing;
      } else {
        matched.insert(row.id);
        row.current_median = fresh->seconds.median;
        row.factor = fresh->seconds.median / base.seconds.median;
        // Strictly-greater: a case exactly at the threshold passes.
        row.verdict = row.factor > max_regression ? CaseVerdict::regressed
                                                  : CaseVerdict::ok;
      }
      rows.push_back(std::move(row));
    }
  }
  for (const CaseResult& fresh : results) {
    if (matched.contains(fresh.id())) {
      continue;
    }
    rows.push_back(CaseComparison{.id = fresh.id(),
                                  .verdict = CaseVerdict::added,
                                  .current_median = fresh.seconds.median,
                                  .baseline_median = 0.0,
                                  .factor = 0.0});
  }
  return rows;
}

bool comparison_passes(const std::vector<CaseComparison>& rows) {
  for (const CaseComparison& row : rows) {
    if (row.verdict == CaseVerdict::regressed || row.verdict == CaseVerdict::missing) {
      return false;
    }
  }
  return true;
}

}  // namespace greenfpga::bench
