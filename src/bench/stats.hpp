#ifndef GREENFPGA_BENCH_STATS_HPP
#define GREENFPGA_BENCH_STATS_HPP

/// \file stats.hpp
/// Robust summary statistics for micro-benchmark timing samples.
///
/// Timing samples on shared machines are contaminated by scheduler noise
/// that is strictly one-sided (a preempted run is slower, never faster),
/// so the harness reports order statistics -- median and percentiles --
/// and the median absolute deviation rather than mean/stddev, which a
/// single descheduled repetition can move arbitrarily.  The percentile
/// scheme (linear interpolation over the sorted samples at rank
/// p/100 * (n-1)) matches `scenario::summarise_samples`, so a percentile
/// means the same thing in a bench artifact as in a Monte-Carlo report.

#include <vector>

namespace greenfpga::bench {

/// Order-statistic summary of one sample set (same unit as the samples;
/// the harness feeds per-operation seconds).
struct SampleStats {
  double min = 0.0;
  double p10 = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  /// Median absolute deviation from the median: the robust spread
  /// (0 for a single sample).
  double mad = 0.0;
};

/// Percentile `p` (in percent, 0..100) of an ascending-sorted sample set:
/// linear interpolation at rank p/100 * (n-1).  Requires a non-empty,
/// sorted input.
[[nodiscard]] double percentile(const std::vector<double>& sorted, double p);

/// Full summary of `samples` (unsorted input accepted; sorts a copy).
/// Throws std::invalid_argument on an empty set -- a benchmark with zero
/// repetitions has no statistics, and silently returning zeros would read
/// as an infinitely fast case.
[[nodiscard]] SampleStats compute_stats(std::vector<double> samples);

}  // namespace greenfpga::bench

#endif  // GREENFPGA_BENCH_STATS_HPP
